// Package trace models IA32-style uop traces and synthesizes the
// 531-trace workload of paper Table 1.
//
// The original evaluation used proprietary traces of 10M consecutive IA32
// instructions from ten benchmark suites. Those traces are not available,
// so this package generates deterministic synthetic streams whose
// first-order statistics — instruction mix, operand value bias, branch
// behaviour, memory locality and working-set size — are controlled per
// suite. The Penelope mechanisms only consume those statistics (occupancy,
// idle time, per-bit value bias, cache reuse), which is what makes the
// substitution sound; see DESIGN.md §2.
//
// Traces are streams: NewTrace returns a generator that yields uops one
// at a time and can be Reset and replayed, always producing the same
// sequence for the same (suite, index) pair. Synthesis runs once per
// stream in the common case: Record packs a generated trace into an
// immutable Recording (51 B/uop), Cursor replays it with zero
// allocation, and Bank records the Table 1 workload for every
// configuration sweep to share — see record.go and bank.go.
package trace

import (
	"fmt"
	"math/rand"
)

// Class categorizes a uop by execution resource.
type Class int

// Uop classes. Loads and stores occupy the memory ports; ALU and Mul the
// integer ports; FPAdd/FPMul the FP port.
const (
	ClassALU Class = iota
	ClassMul
	ClassLoad
	ClassStore
	ClassBranch
	ClassFPAdd
	ClassFPMul
	numClasses
)

var classNames = [...]string{"alu", "mul", "load", "store", "branch", "fpadd", "fpmul"}

// String returns the lower-case class name.
func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Latency returns the static execution latency of the class in cycles,
// which also populates the scheduler's 5-bit latency field (Table 2).
func (c Class) Latency() int {
	switch c {
	case ClassALU, ClassBranch:
		return 1
	case ClassMul:
		return 3
	case ClassLoad:
		return 3
	case ClassStore:
		return 1
	case ClassFPAdd:
		return 4
	case ClassFPMul:
		return 5
	default:
		return 1
	}
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsFP reports whether the class executes on the FP stack.
func (c Class) IsFP() bool { return c == ClassFPAdd || c == ClassFPMul }

// Port returns the issue-port index (0..4) the class uses, matching the
// 5-bit one-hot port field of the scheduler (Table 2).
func (c Class) Port() int {
	switch c {
	case ClassALU:
		return 0
	case ClassBranch:
		return 1
	case ClassLoad:
		return 2
	case ClassStore:
		return 3
	default: // Mul, FP
		return 4
	}
}

// NumIntRegs and NumFPRegs are the architectural register counts of the
// modelled ISA (IA32 integer registers plus x87 stack).
const (
	NumIntRegs = 16
	NumFPRegs  = 8
)

// Uop is one micro-operation of a trace, carrying the values the NBTI
// studies need (operand data, immediates, addresses, flags).
type Uop struct {
	Class Class

	// Registers: architectural indices, -1 if unused. FP uops address
	// the FP register space.
	Dst, Src1, Src2 int

	// Operand values as read (32-bit for integer, 80-bit patterns for FP
	// stored in Val1Hi/Val1 style packing — FP uses Val*.Lo64 plus 16
	// extension bits).
	SrcVal1, SrcVal2 uint64
	SrcExt1, SrcExt2 uint16 // upper 16 bits of 80-bit FP patterns
	DstVal           uint64
	DstExt           uint16

	Imm    uint64 // immediate operand value (16-bit significant)
	HasImm bool

	Addr uint64 // byte address for loads/stores

	Taken       bool  // branch outcome
	Mispredict  bool  // branch was mispredicted (drains the front end)
	FetchBubble uint8 // front-end stall cycles before this uop (I-cache miss)

	Flags  uint8 // 6-bit flags result (ZF, SF, CF, OF, PF, AF)
	Shift1 bool  // source 1 needs AH/BH/CH/DH shift
	Shift2 bool
	MOBid  int    // memory order buffer slot, loads/stores only
	TOS    int    // FP top-of-stack at this uop
	Opcode uint16 // 12-bit opcode encoding
}

// Flag bit positions within Uop.Flags.
const (
	FlagZF = 1 << iota
	FlagSF
	FlagCF
	FlagOF
	FlagPF
	FlagAF
)

// Trace is a deterministic uop stream.
type Trace struct {
	SuiteID SuiteID
	Index   int // index within the suite
	Length  int // uops per replay

	profile Profile
	seed    int64
	rng     *rand.Rand
	pos     int
	scratch Uop // NextUop view buffer

	// generator state
	intRegs  [NumIntRegs]uint64
	fpRegs   [NumFPRegs]uint64
	fpExts   [NumFPRegs]uint16
	tos      int
	mob      int
	lastDst  []int // recent integer destinations for dependency distance
	curPos   uint64
	lastAddr uint64
	hot      []uint64
	cold     []uint64
}

// NewTrace builds the deterministic trace idx of the given suite with the
// given replay length in uops. Length must be positive; idx must be
// within the suite's trace count.
func NewTrace(id SuiteID, idx, length int) *Trace {
	s := SuiteByID(id)
	if idx < 0 || idx >= s.Count {
		panic(fmt.Sprintf("trace: suite %s has %d traces, index %d invalid", s.Name, s.Count, idx))
	}
	if length <= 0 {
		panic("trace: length must be positive")
	}
	seed := int64(id)*100003 + int64(idx)*7919 + 12345
	t := &Trace{
		SuiteID: id,
		Index:   idx,
		Length:  length,
		profile: jitter(s.Profile, rand.New(rand.NewSource(seed^0x5EED))),
		seed:    seed,
	}
	t.Reset()
	return t
}

// Name identifies the trace, e.g. "server/12".
func (t *Trace) Name() string { return fmt.Sprintf("%s/%d", SuiteByID(t.SuiteID).Name, t.Index) }

// Clone returns an independent trace producing the identical uop
// sequence. Traces are stateful streams, so concurrent consumers (e.g.
// pipeline.RunBatch workers) each need their own instance.
func (t *Trace) Clone() *Trace { return NewTrace(t.SuiteID, t.Index, t.Length) }

// Reset rewinds the trace to its first uop; replays are identical.
func (t *Trace) Reset() {
	t.rng = rand.New(rand.NewSource(t.seed))
	t.pos = 0
	t.tos = 0
	t.mob = 0
	t.lastDst = t.lastDst[:0]
	for i := range t.intRegs {
		t.intRegs[i] = 0
	}
	for i := range t.fpRegs {
		t.fpRegs[i] = 0
		t.fpExts[i] = 0
	}
	p := t.profile
	// Working set: a hot subset receives most accesses, the cold rest
	// the remainder; a streaming pointer models sequential kernels.
	hotLines := p.WorkingSetLines / 8
	if hotLines < 4 {
		hotLines = 4
	}
	t.hot = t.hot[:0]
	t.cold = t.cold[:0]
	base := uint64(0x10000000) + uint64(t.Index)<<20
	for i := 0; i < hotLines; i++ {
		t.hot = append(t.hot, base+uint64(i)*64)
	}
	spread := p.PageSpread
	if spread < 1 {
		spread = 1
	}
	// Cold lines are scattered inside their spread window rather than
	// laid out at a fixed stride: a regular stride would alias into a
	// fraction of the cache sets and fabricate conflict misses.
	for i := 0; i < p.WorkingSetLines; i++ {
		slot := i*spread + t.rng.Intn(spread)
		t.cold = append(t.cold, base+0x100000+uint64(slot)*64)
	}
	t.curPos = base + 0x200000
	t.lastAddr = t.hot[0]
}

// Next returns the next uop and true, or a zero Uop and false at end of
// trace.
func (t *Trace) Next() (Uop, bool) {
	if t.pos >= t.Length {
		return Uop{}, false
	}
	t.pos++
	return t.generate(), true
}

// NextUop synthesizes the next uop into an internal scratch buffer and
// returns a view of it, satisfying Source. The view is valid until the
// next NextUop or Reset call.
func (t *Trace) NextUop() (*Uop, bool) {
	if t.pos >= t.Length {
		return nil, false
	}
	t.pos++
	t.scratch = t.generate()
	return &t.scratch, true
}

// Len returns the replay length in uops, satisfying Source.
func (t *Trace) Len() int { return t.Length }

// Fork returns an independent generator over the identical stream,
// satisfying Source. Safe to call concurrently: it reads only the
// immutable identity fields.
func (t *Trace) Fork() Source { return t.Clone() }

// Pos returns how many uops have been produced since the last Reset.
func (t *Trace) Pos() int { return t.pos }
