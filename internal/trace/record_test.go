package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestRecordReplayEquivalence is the oracle test of the record/replay
// subsystem: for every one of the ten suites, a Cursor over the packed
// Recording must yield the deep-equal uop sequence the generator
// synthesizes. Uop is a comparable struct, so == is a full-field check.
func TestRecordReplayEquivalence(t *testing.T) {
	const length = 3000
	for id := SuiteID(0); id < NumSuites; id++ {
		id := id
		t.Run(SuiteByID(id).Name, func(t *testing.T) {
			gen := NewTrace(id, 0, length)
			cur := Record(id, 0, length).Cursor()
			for i := 0; ; i++ {
				gu, gok := gen.Next()
				ru, rok := cur.NextUop()
				if gok != rok {
					t.Fatalf("uop %d: generator ok=%v, replay ok=%v", i, gok, rok)
				}
				if !gok {
					break
				}
				if *ru != gu {
					t.Fatalf("uop %d differs:\nreplay    %+v\ngenerator %+v", i, *ru, gu)
				}
			}
			if cur.Pos() != length || cur.Len() != length {
				t.Errorf("cursor pos/len = %d/%d, want %d", cur.Pos(), cur.Len(), length)
			}
		})
	}
}

// TestSourceViewsMatchValues checks the generator's own NextUop view
// against its by-value Next.
func TestSourceViewsMatchValues(t *testing.T) {
	a := NewTrace(Server, 4, 400)
	b := NewTrace(Server, 4, 400)
	for i := 0; i < 400; i++ {
		ua, oka := a.NextUop()
		ub, okb := b.Next()
		if !oka || !okb {
			t.Fatalf("stream ended early at %d", i)
		}
		if *ua != ub {
			t.Fatalf("uop %d: NextUop view differs from Next value", i)
		}
	}
	if _, ok := a.NextUop(); ok {
		t.Fatal("NextUop must end after Length uops")
	}
}

// TestCursorResetMidStream rewinds a cursor halfway through a replay and
// requires the second replay to match a fresh one bit for bit.
func TestCursorResetMidStream(t *testing.T) {
	rec := Record(Multimedia, 2, 600)
	cur := rec.Cursor()
	for i := 0; i < 250; i++ {
		if _, ok := cur.NextUop(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	if cur.Pos() != 250 {
		t.Fatalf("pos = %d, want 250", cur.Pos())
	}
	cur.Reset()
	if cur.Pos() != 0 {
		t.Fatalf("pos after Reset = %d, want 0", cur.Pos())
	}
	fresh := rec.Cursor()
	for i := 0; ; i++ {
		a, aok := cur.NextUop()
		b, bok := fresh.NextUop()
		if aok != bok {
			t.Fatalf("uop %d: reset cursor ok=%v, fresh ok=%v", i, aok, bok)
		}
		if !aok {
			break
		}
		if *a != *b {
			t.Fatalf("uop %d differs after mid-stream Reset", i)
		}
	}
}

// TestConcurrentCursors replays one shared recording from many forked
// cursors at once (run under -race in CI): each must see the identical
// sequence with no cross-talk through the shared buffer.
func TestConcurrentCursors(t *testing.T) {
	const length = 1500
	rec := Record(SpecINT2000, 1, length)
	want := make([]Uop, 0, length)
	ref := rec.Cursor()
	for {
		u, ok := ref.NextUop()
		if !ok {
			break
		}
		want = append(want, *u)
	}

	root := rec.Cursor()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := root.Fork()
			for i := 0; ; i++ {
				u, ok := cur.NextUop()
				if !ok {
					if i != length {
						errs <- "stream ended early"
					}
					return
				}
				if *u != want[i] {
					errs <- "concurrent replay diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPackedFieldRoundTrip drives the pack/unpack pair directly with
// edge-case uops: 80-bit FP extension bits at their extremes, the full
// 16-bit immediate range, every boolean flag and every flags bit.
func TestPackedFieldRoundTrip(t *testing.T) {
	edges := []Uop{
		{Class: ClassFPMul, Dst: 7, Src1: 7, Src2: 0, TOS: NumFPRegs - 1,
			SrcVal1: ^uint64(0), SrcVal2: 1, DstVal: 1 << 63,
			SrcExt1: 0xFFFF, SrcExt2: 0x8000, DstExt: 0x7FFF},
		{Class: ClassALU, Dst: NumIntRegs - 1, Src1: 0, Src2: -1,
			HasImm: true, Imm: 0xFFFF, Flags: FlagZF | FlagSF | FlagCF | FlagOF | FlagPF | FlagAF,
			Shift1: true, Shift2: true, Opcode: 0xFFF},
		{Class: ClassBranch, Dst: -1, Src1: 3, Src2: 5,
			Taken: true, Mispredict: true, FetchBubble: 255},
		{Class: ClassStore, Dst: -1, Src1: 1, Src2: 2,
			Addr: ^uint64(0), MOBid: 63},
		{Class: ClassLoad, Dst: 0, Src1: -1, Src2: -1, Imm: 0},
	}
	r := newRecording(Encoder, 0, "edges/0", len(edges))
	for i := range edges {
		r.append(&edges[i])
	}
	cur := r.Cursor()
	for i := range edges {
		u, ok := cur.NextUop()
		if !ok {
			t.Fatalf("uop %d missing", i)
		}
		if *u != edges[i] {
			t.Fatalf("uop %d round-trip mismatch:\ngot  %+v\nwant %+v", i, *u, edges[i])
		}
	}
	if _, ok := cur.NextUop(); ok {
		t.Fatal("cursor must end after recorded uops")
	}
}

// TestRecordingOverflowPanics: a field outside its packed width must
// fail loudly at record time, never truncate silently.
func TestRecordingOverflowPanics(t *testing.T) {
	cases := map[string]Uop{
		"imm":  {Imm: 1 << 16, HasImm: true},
		"dst":  {Dst: 127},
		"mob":  {MOBid: 64},
		"tos":  {TOS: NumFPRegs},
		"src1": {Src1: -2},
	}
	for name, u := range cases {
		u := u
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("overflowing uop did not panic")
				}
			}()
			newRecording(Encoder, 0, "overflow/0", 1).append(&u)
		})
	}
}

func TestRecordingMetadata(t *testing.T) {
	rec := Record(Server, 12, 200)
	if rec.Name() != "server/12" || rec.SuiteID() != Server || rec.Index() != 12 {
		t.Errorf("metadata = %s/%v/%d", rec.Name(), rec.SuiteID(), rec.Index())
	}
	if rec.Len() != 200 {
		t.Errorf("Len = %d, want 200", rec.Len())
	}
	if rec.Bytes() != 200*51 {
		t.Errorf("Bytes = %d, want %d", rec.Bytes(), 200*51)
	}
	if rec.Cursor().Name() != "server/12" {
		t.Error("cursor name mismatch")
	}
}

// TestBankMatchesSampleTraces: the bank must hold exactly the traces
// SampleTraces selects, and SampleSources must pick the matching subsets.
func TestBankMatchesSampleTraces(t *testing.T) {
	const length, stride = 200, 60
	b := NewBank(length, stride)
	want := SampleTraces(length, stride)
	if len(b.Recordings()) != len(want) {
		t.Fatalf("bank holds %d recordings, SampleTraces gives %d", len(b.Recordings()), len(want))
	}
	for i, rec := range b.Recordings() {
		if rec.Name() != want[i].Name() {
			t.Errorf("recording %d = %s, want %s", i, rec.Name(), want[i].Name())
		}
	}
	sub := b.SampleSources(stride * 4)
	wantSub := SampleTraces(length, stride*4)
	if len(sub) != len(wantSub) {
		t.Fatalf("SampleSources(%d) gives %d sources, want %d", stride*4, len(sub), len(wantSub))
	}
	for i, s := range sub {
		if s.Name() != wantSub[i].Name() {
			t.Errorf("sampled source %d = %s, want %s", i, s.Name(), wantSub[i].Name())
		}
	}
	if b.Bytes() != len(want)*length*51 {
		t.Errorf("bank Bytes = %d, want %d", b.Bytes(), len(want)*length*51)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-multiple sample stride did not panic")
		}
	}()
	b.SampleSources(stride + 1)
}

// TestOperandStreamFromRecordings checks the adder operand path over
// replay cursors matches the generator-backed stream sample for sample.
func TestOperandStreamFromRecordings(t *testing.T) {
	gen := NewOperandStream([]Source{NewTrace(Kernels, 0, 300), NewTrace(Office, 1, 300)})
	rep := NewOperandStream([]Source{Record(Kernels, 0, 300).Cursor(), Record(Office, 1, 300).Cursor()})
	for i := 0; i < 3000; i++ {
		ga, gb, gc := gen.NextOperands()
		ra, rb, rc := rep.NextOperands()
		if ga != ra || gb != rb || gc != rc {
			t.Fatalf("operand sample %d differs: gen (%#x,%#x,%v) replay (%#x,%#x,%v)",
				i, ga, gb, gc, ra, rb, rc)
		}
	}
}

// TestOperandStreamPanicsWithoutALU: a source set with no ALU/Mul uops
// must panic with a bounded scan instead of spinning forever.
func TestOperandStreamPanicsWithoutALU(t *testing.T) {
	r := newRecording(Encoder, 0, "stores/0", 2)
	r.append(&Uop{Class: ClassStore, Dst: -1, Src1: 0, Src2: 1, Addr: 64})
	r.append(&Uop{Class: ClassBranch, Dst: -1, Src1: 2, Src2: 3, Taken: true})
	s := NewOperandStream([]Source{r.Cursor()})
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("operand stream without ALU uops did not panic")
		}
		if !strings.Contains(msg, "ALU/Mul") {
			t.Errorf("panic message %q should name the missing uop class", msg)
		}
	}()
	s.NextOperands()
}
