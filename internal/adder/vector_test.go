package adder

import (
	"math/rand"
	"testing"

	"penelope/internal/circuit"
	"penelope/internal/nbti"
)

// TestEvalBatchMatchesReference drives EvalBatch with 0, 1, exactly 64
// and >64 operand triples and checks every decoded Result against the
// behavioural reference.
func TestEvalBatchMatchesReference(t *testing.T) {
	ad := New32()
	rng := rand.New(rand.NewSource(5))
	for _, count := range []int{0, 1, 63, 64, 65, 200} {
		ops := make([]Operands, count)
		for i := range ops {
			ops[i] = Operands{
				A:   uint64(rng.Uint32()),
				B:   uint64(rng.Uint32()),
				Cin: rng.Intn(2) == 1,
			}
		}
		got := ad.EvalBatch(ops)
		if len(got) != count {
			t.Fatalf("EvalBatch(%d ops) returned %d results", count, len(got))
		}
		for i, op := range ops {
			if want := ad.Reference(op.A, op.B, op.Cin); got[i] != want {
				t.Fatalf("count=%d lane %d: %+v, want %+v", count, i, got[i], want)
			}
		}
	}
}

// TestEvalMatchesScalarOracle checks the compiled single-lane Eval path
// against the interpreted netlist.
func TestEvalMatchesScalarOracle(t *testing.T) {
	ad := New(8, 0)
	for a := uint64(0); a < 256; a += 3 {
		for b := uint64(0); b < 256; b += 11 {
			for _, cin := range []bool{false, true} {
				if got, want := ad.Eval(a, b, cin), ad.EvalScalar(a, b, cin); got != want {
					t.Fatalf("Eval(%d,%d,%v) = %+v, scalar oracle %+v", a, b, cin, got, want)
				}
			}
		}
	}
}

// sweepPairsScalar is the pre-vectorization Figure 4 sweep: one scalar
// StressSim per pair, each synthetic input applied for one time unit.
// It is the oracle the lane-packed SweepPairs must match bit for bit.
func sweepPairsScalar(ad *Adder, params nbti.Params) []PairResult {
	var out []PairResult
	for i := 1; i <= NumSyntheticInputs; i++ {
		for j := i + 1; j <= NumSyntheticInputs; j++ {
			sim := circuit.NewStressSim(ad.Netlist())
			sim.Apply(ad.SyntheticInput(i), 1)
			sim.Apply(ad.SyntheticInput(j), 1)
			rep := sim.Analyze(params)
			out = append(out, PairResult{
				I: i, J: j,
				NarrowFullyStressed: rep.NarrowFullyStressed,
				WorstEffectiveBias:  rep.WorstEffectiveBias,
				Guardband:           rep.Guardband,
			})
		}
	}
	return out
}

// TestSweepPairsMatchesScalarOracle enforces the Figure 4 equivalence:
// the lane-packed sweep must reproduce the scalar evaluator's 28
// PairResults bit-identically (float equality, no tolerance).
func TestSweepPairsMatchesScalarOracle(t *testing.T) {
	params := nbti.DefaultParams()
	for _, width := range []int{8, 32} {
		ad := New(width, 0)
		got := ad.SweepPairs(params)
		want := sweepPairsScalar(ad, params)
		if len(got) != len(want) {
			t.Fatalf("width %d: %d pairs, want %d", width, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("width %d pair %s: vector %+v != scalar %+v",
					width, want[k].Label(), got[k], want[k])
			}
		}
	}
}

// guardbandScenarioScalar is the pre-vectorization Figure 5 aging loop:
// per sample, one scalar Apply for the real slot and one per synthetic
// injection.
func guardbandScenarioScalar(ad *Adder, src OperandSource, realFraction float64, i, j, samples int, params nbti.Params) ScenarioResult {
	sim := circuit.NewStressSim(ad.Netlist())
	const scale = 1000
	realDt := uint64(realFraction * scale)
	idleDt := uint64(scale) - realDt
	for s := 0; s < samples; s++ {
		a, b, cin := src.NextOperands()
		if realDt > 0 {
			sim.Apply(ad.InputVector(a, b, cin), realDt)
		}
		if idleDt > 0 {
			half := idleDt / 2
			sim.Apply(ad.SyntheticInput(i), half)
			sim.Apply(ad.SyntheticInput(j), idleDt-half)
		}
	}
	rep := sim.Analyze(params)
	return ScenarioResult{
		RealFraction: realFraction,
		Guardband:    rep.Guardband,
		WorstBias:    rep.WorstEffectiveBias,
	}
}

// TestGuardbandScenarioMatchesScalarOracle enforces the Figure 5
// equivalence: batching real samples into lanes and aggregating the
// constant synthetic injections must leave the report bit-identical to
// the per-sample scalar loop, across utilizations and sample counts
// (including non-multiples of 64 and the 0%/100% degenerate fractions).
func TestGuardbandScenarioMatchesScalarOracle(t *testing.T) {
	ad := New32()
	params := nbti.DefaultParams()
	for _, tc := range []struct {
		frac    float64
		samples int
	}{
		{1.0, 100}, {0.30, 130}, {0.21, 64}, {0.21, 65}, {0.11, 1}, {0.0, 70}, {0.215, 200},
	} {
		// Two sources with identical seeds: the vector path must consume
		// operands in the same order as the scalar loop.
		vecSrc := &biasedSource{rng: rand.New(rand.NewSource(9))}
		refSrc := &biasedSource{rng: rand.New(rand.NewSource(9))}
		got := ad.GuardbandScenario(vecSrc, tc.frac, 1, 8, tc.samples, params)
		want := guardbandScenarioScalar(ad, refSrc, tc.frac, 1, 8, tc.samples, params)
		if got.Guardband != want.Guardband || got.WorstBias != want.WorstBias {
			t.Errorf("frac=%v samples=%d: vector (gb=%v bias=%v) != scalar (gb=%v bias=%v)",
				tc.frac, tc.samples, got.Guardband, got.WorstBias, want.Guardband, want.WorstBias)
		}
		// Both paths must have drawn the same number of operands.
		a1, b1, c1 := vecSrc.NextOperands()
		a2, b2, c2 := refSrc.NextOperands()
		if a1 != a2 || b1 != b2 || c1 != c2 {
			t.Errorf("frac=%v samples=%d: operand streams diverged", tc.frac, tc.samples)
		}
	}
}

// TestAblationLoopEquivalence pins the bench_test ablation rework: the
// 64-lane packed 21%-utilization loop with aggregated idle injection
// must match the scalar per-sample loop bit for bit.
func TestAblationLoopEquivalence(t *testing.T) {
	ad := New32()
	params := nbti.DefaultParams()
	for _, idxs := range [][]int{{1}, {1, 8}, {1, 4, 5, 8}, {1, 2, 3, 4, 5, 6, 7, 8}} {
		const samples = 120
		vecRng := rand.New(rand.NewSource(11))
		refRng := rand.New(rand.NewSource(11))

		vec := circuit.NewStressSim(ad.Netlist())
		ops := make([]Operands, 0, 64)
		flush := func() {
			if len(ops) > 0 {
				vec.ApplyVec(ad.InputWords(ops), len(ops), 21)
			}
			ops = ops[:0]
		}
		for s := 0; s < samples; s++ {
			ops = append(ops, Operands{A: uint64(vecRng.Uint32()), B: uint64(vecRng.Uint32())})
			if len(ops) == 64 {
				flush()
			}
		}
		flush()
		share := uint64(79 / len(idxs))
		for _, k := range idxs {
			vec.Apply(ad.SyntheticInput(k), share*samples)
		}

		ref := circuit.NewStressSim(ad.Netlist())
		for s := 0; s < samples; s++ {
			ref.Apply(ad.InputVector(uint64(refRng.Uint32()), uint64(refRng.Uint32()), false), 21)
			for _, k := range idxs {
				ref.Apply(ad.SyntheticInput(k), share)
			}
		}

		if got, want := vec.Analyze(params), ref.Analyze(params); got != want {
			t.Errorf("idxs=%v: vector %+v != scalar %+v", idxs, got, want)
		}
	}
}
