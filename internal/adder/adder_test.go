package adder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"penelope/internal/nbti"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewValidatesWidth(t *testing.T) {
	for _, bad := range []int{0, 3, 7, 128, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad, 0)
		}()
	}
}

func TestAdderExhaustive8(t *testing.T) {
	ad := New(8, 0)
	for a := uint64(0); a < 256; a += 7 {
		for b := uint64(0); b < 256; b += 5 {
			for _, cin := range []bool{false, true} {
				got := ad.Eval(a, b, cin)
				want := ad.Reference(a, b, cin)
				if got != want {
					t.Fatalf("add(%d,%d,%v) = %+v, want %+v", a, b, cin, got, want)
				}
			}
		}
	}
}

func TestAdder32Random(t *testing.T) {
	ad := New32()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() & 0xFFFFFFFF
		b := rng.Uint64() & 0xFFFFFFFF
		cin := rng.Intn(2) == 1
		got := ad.Eval(a, b, cin)
		want := ad.Reference(a, b, cin)
		if got != want {
			t.Fatalf("add(%#x,%#x,%v) = %+v, want %+v", a, b, cin, got, want)
		}
	}
}

func TestAdder32Property(t *testing.T) {
	ad := New32()
	f := func(a, b uint32, cin bool) bool {
		return ad.Eval(uint64(a), uint64(b), cin) == ad.Reference(uint64(a), uint64(b), cin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdderCornerCases(t *testing.T) {
	ad := New32()
	const max = uint64(0xFFFFFFFF)
	cases := []struct {
		a, b uint64
		cin  bool
	}{
		{0, 0, false},             // zero flag
		{0, 0, true},              // carry-in only
		{max, 1, false},           // wraparound, carry out, zero
		{max, max, true},          // all carries
		{1 << 31, 1 << 31, false}, // signed overflow
		{0x7FFFFFFF, 1, false},    // positive overflow
		{0xAAAAAAAA, 0x55555555, false},
	}
	for _, tc := range cases {
		if got, want := ad.Eval(tc.a, tc.b, tc.cin), ad.Reference(tc.a, tc.b, tc.cin); got != want {
			t.Errorf("add(%#x,%#x,%v) = %+v, want %+v", tc.a, tc.b, tc.cin, got, want)
		}
	}
}

func TestPrefixLevels(t *testing.T) {
	if got := New32().PrefixLevels(); got != 5 {
		t.Errorf("32-bit LF adder has %d levels, want 5", got)
	}
	if got := New(8, 0).PrefixLevels(); got != 3 {
		t.Errorf("8-bit LF adder has %d levels, want 3", got)
	}
}

func TestNetlistHasWideGates(t *testing.T) {
	ad := New32()
	wide := 0
	for _, g := range ad.Netlist().Gates() {
		if g.Wide {
			wide++
		}
	}
	if wide == 0 {
		t.Error("high-fanout prefix nodes should be widened")
	}
}

func TestSyntheticInputs(t *testing.T) {
	ad := New32()
	// Input 1 = <0,0,0>: everything zero. Input 8 = <1,1,1>.
	in1 := ad.SyntheticInput(1)
	for i, b := range in1 {
		if b {
			t.Fatalf("input 1 bit %d set", i)
		}
	}
	in8 := ad.SyntheticInput(8)
	for i, b := range in8 {
		if !b {
			t.Fatalf("input 8 bit %d clear", i)
		}
	}
	// Input 2 = <0,0,1>: only carry-in set.
	in2 := ad.SyntheticInput(2)
	for i, b := range in2[:64] {
		if b {
			t.Fatalf("input 2 operand bit %d set", i)
		}
	}
	if !in2[64] {
		t.Fatal("input 2 carry-in clear")
	}
	for _, bad := range []int{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SyntheticInput(%d) did not panic", bad)
				}
			}()
			ad.SyntheticInput(bad)
		}()
	}
}

// TestSweepPairsShape reproduces the qualitative content of Figure 4:
// 28 pairs; complementary pairs (1+8, 2+7, 3+6, 4+5) are markedly better
// than pairs sharing an operand value, and 1+8 attains the minimum.
func TestSweepPairsShape(t *testing.T) {
	ad := New32()
	params := nbti.DefaultParams()
	results := ad.SweepPairs(params)
	if len(results) != 28 {
		t.Fatalf("got %d pairs, want 28", len(results))
	}
	byLabel := map[string]PairResult{}
	for _, r := range results {
		byLabel[r.Label()] = r
	}
	best := BestPair(results)
	if best.Label() != "1+8" {
		t.Errorf("best pair = %s, want 1+8", best.Label())
	}
	// Complementary pairs flip every input bit, so they balance far more
	// transistors than same-operand pairs like 1+2 (only carry-in
	// differs).
	for _, comp := range []string{"1+8", "2+7", "3+6", "4+5"} {
		if byLabel[comp].NarrowFullyStressed > byLabel["1+2"].NarrowFullyStressed {
			t.Errorf("complementary pair %s (%.4f) should beat 1+2 (%.4f)",
				comp, byLabel[comp].NarrowFullyStressed, byLabel["1+2"].NarrowFullyStressed)
		}
	}
	for _, r := range results {
		if r.NarrowFullyStressed < 0 || r.NarrowFullyStressed > 1 {
			t.Errorf("pair %s fraction out of range: %v", r.Label(), r.NarrowFullyStressed)
		}
	}
	t.Logf("best pair %s: narrow100%%=%.4f", best.Label(), best.NarrowFullyStressed)
}

// fixedSource always returns the same operands, for deterministic tests.
type fixedSource struct {
	a, b uint64
	cin  bool
}

func (s fixedSource) NextOperands() (uint64, uint64, bool) { return s.a, s.b, s.cin }

// biasedSource mimics real integer traces: small values, carry-in almost
// always zero (§1.1: carry-in is "0" more than 90% of the time).
type biasedSource struct{ rng *rand.Rand }

func (s *biasedSource) NextOperands() (uint64, uint64, bool) {
	return uint64(s.rng.Intn(1024)), uint64(s.rng.Intn(1024)), s.rng.Intn(20) == 0
}

// TestGuardbandScenarios reproduces the shape of Figure 5: real inputs
// need the full ~20% guardband; mixing in the 1+8 pair during idle time
// cuts it monotonically with idle share (paper: 7.4% at 30% real, 5.8%
// at 21%, lower still at 11%).
func TestGuardbandScenarios(t *testing.T) {
	ad := New32()
	params := nbti.DefaultParams()
	src := &biasedSource{rng: rand.New(rand.NewSource(7))}

	real100 := ad.GuardbandScenario(src, 1.0, 1, 8, 400, params)
	r30 := ad.GuardbandScenario(src, 0.30, 1, 8, 400, params)
	r21 := ad.GuardbandScenario(src, 0.21, 1, 8, 400, params)
	r11 := ad.GuardbandScenario(src, 0.11, 1, 8, 400, params)

	if !almostEqual(real100.Guardband, params.MaxGuardband, 0.015) {
		t.Errorf("real-inputs guardband = %.3f, want ≈ %.2f", real100.Guardband, params.MaxGuardband)
	}
	if !(r30.Guardband > r21.Guardband && r21.Guardband > r11.Guardband) {
		t.Errorf("guardband must fall with utilization: 30%%=%.3f 21%%=%.3f 11%%=%.3f",
			r30.Guardband, r21.Guardband, r11.Guardband)
	}
	if r30.Guardband >= real100.Guardband/2 {
		t.Errorf("30%% real guardband %.3f should be well under real inputs %.3f",
			r30.Guardband, real100.Guardband)
	}
	// Paper values: 7.4% and 5.8%. Allow a band around them — the
	// workload is synthetic — but require the right magnitude.
	if r30.Guardband < 0.05 || r30.Guardband > 0.10 {
		t.Errorf("30%% real guardband = %.3f, want ≈ 0.074", r30.Guardband)
	}
	if r21.Guardband < 0.04 || r21.Guardband > 0.08 {
		t.Errorf("21%% real guardband = %.3f, want ≈ 0.058", r21.Guardband)
	}
	t.Logf("guardbands: real=%.3f 30%%=%.3f 21%%=%.3f 11%%=%.3f",
		real100.Guardband, r30.Guardband, r21.Guardband, r11.Guardband)
}

func TestGuardbandScenarioNames(t *testing.T) {
	ad := New(8, 0)
	params := nbti.DefaultParams()
	src := fixedSource{a: 1, b: 2}
	if got := ad.GuardbandScenario(src, 1.0, 1, 8, 1, params).Name; got != "real inputs" {
		t.Errorf("name = %q", got)
	}
	if got := ad.GuardbandScenario(src, 0.21, 1, 8, 1, params).Name; got != "21% real + 1 + 8" {
		t.Errorf("name = %q", got)
	}
}

func TestGuardbandScenarioPanics(t *testing.T) {
	ad := New(8, 0)
	params := nbti.DefaultParams()
	for _, f := range []func(){
		func() { ad.GuardbandScenario(fixedSource{}, -0.1, 1, 8, 1, params) },
		func() { ad.GuardbandScenario(fixedSource{}, 0.5, 1, 8, 0, params) },
		func() { BestPair(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCarryInBiasMotivation(t *testing.T) {
	// §1.1: with real inputs the PMOS connected to the carry-in is
	// stressed >90% of the time. Verify via the p0·cin AND gate tap.
	ad := New32()
	params := nbti.DefaultParams()
	src := &biasedSource{rng: rand.New(rand.NewSource(3))}
	res := ad.GuardbandScenario(src, 1.0, 1, 8, 500, params)
	if res.WorstBias < 0.9 {
		t.Errorf("worst bias under real inputs = %.3f, want > 0.9", res.WorstBias)
	}
}
