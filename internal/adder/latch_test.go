package adder

import (
	"math/rand"
	"testing"
)

func TestLatchStudyAlternatingPairBalances(t *testing.T) {
	// §3.3/§4.3: alternating <0,0,0> and <1,1,1> during idle periods
	// holds opposite values in the latches for similar times, keeping
	// them near balance even though the data itself is biased.
	ad := New32()
	src := &biasedSource{rng: rand.New(rand.NewSource(5))}
	pair := ad.LatchStudy(src, 0.21, []int{1, 8}, 400)
	if pair.WorstBias > 0.65 {
		t.Errorf("alternating pair latch worst bias = %.3f, want near balance", pair.WorstBias)
	}
	if got := len(pair.Biases); got != 65 {
		t.Errorf("latch bias count = %d, want 65 (2·32+1)", got)
	}
}

func TestLatchStudySingleInputStresses(t *testing.T) {
	// Holding a single input (all zeros) during idle periods leaves the
	// latches parked at "0" — heavily one-sided wear.
	ad := New32()
	src := &biasedSource{rng: rand.New(rand.NewSource(5))}
	single := ad.LatchStudy(src, 0.21, []int{1}, 400)
	pair := ad.LatchStudy(src, 0.21, []int{1, 8}, 400)
	if single.WorstBias < 0.85 {
		t.Errorf("single-input latch worst bias = %.3f, want high", single.WorstBias)
	}
	if pair.WorstBias >= single.WorstBias {
		t.Errorf("pair (%.3f) must improve on single input (%.3f)",
			pair.WorstBias, single.WorstBias)
	}
}

func TestLatchStudyPanics(t *testing.T) {
	ad := New(8, 0)
	src := fixedSource{}
	for _, f := range []func(){
		func() { ad.LatchStudy(src, -0.1, []int{1}, 1) },
		func() { ad.LatchStudy(src, 0.5, nil, 1) },
		func() { ad.LatchStudy(src, 0.5, []int{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLatchStudyFullReal(t *testing.T) {
	// With 100% real inputs the latches inherit the data bias: the
	// carry-in latch is almost always "0" (§1.1).
	ad := New32()
	src := &biasedSource{rng: rand.New(rand.NewSource(9))}
	rep := ad.LatchStudy(src, 1.0, []int{1, 8}, 500)
	cin := rep.Biases[len(rep.Biases)-1]
	if cin < 0.9 {
		t.Errorf("carry-in latch zero bias = %.3f, want > 0.9", cin)
	}
}
