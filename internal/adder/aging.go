package adder

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"penelope/internal/nbti"
)

// NumSyntheticInputs is the size of the synthetic input set of §4.3: all
// combinations of InputA, InputB and CarryIn set to all-zeros or all-ones.
const NumSyntheticInputs = 8

// SyntheticOperands returns synthetic input k (1-based, 1..8) as an
// operand triple, numbered as in the paper: <InputA, InputB, CarryIn> in
// ascending binary order, so input 1 is <0,0,0>, input 2 is <0,0,1>, ...
// input 8 is <1,1,1>. "InputA is 0 (1)" means all its bits are 0 (1).
func (ad *Adder) SyntheticOperands(k int) Operands {
	if k < 1 || k > NumSyntheticInputs {
		panic("adder: synthetic input index must be in 1..8")
	}
	bits := k - 1
	var op Operands
	mask := uint64(1)<<uint(ad.width) - 1
	if bits&4 != 0 {
		op.A = mask
	}
	if bits&2 != 0 {
		op.B = mask
	}
	op.Cin = bits&1 != 0
	return op
}

// SyntheticInput returns synthetic input k as a primary-input vector
// (see SyntheticOperands for the numbering).
func (ad *Adder) SyntheticInput(k int) []bool {
	op := ad.SyntheticOperands(k)
	return ad.InputVector(op.A, op.B, op.Cin)
}

// OperandSource yields "real" operand samples for the adder, e.g. sampled
// from workload traces (§4.3: "Actual inputs have been sampled from our
// 531 traces").
type OperandSource interface {
	NextOperands() (a, b uint64, cin bool)
}

// PairResult reports the Figure 4 metric for one synthetic input pair.
type PairResult struct {
	I, J int // 1-based synthetic input indices, I < J
	// NarrowFullyStressed is the fraction of all PMOS transistors that
	// are narrow and observe "0" 100% of the time when inputs I and J
	// alternate round-robin.
	NarrowFullyStressed float64
	// WorstEffectiveBias and Guardband characterize the pair beyond the
	// paper's plot, for tie-breaking and the Fig. 5 scenarios.
	WorstEffectiveBias float64
	Guardband          float64
}

// Label renders the pair like the Figure 4 x-axis ("1+8").
func (r PairResult) Label() string { return fmt.Sprintf("%d+%d", r.I, r.J) }

// sweepWorkers caps the Figure 4 fan-out: the per-pair analysis is a
// single transistor-table walk, so a few workers saturate it.
const sweepWorkers = 4

// SweepPairs evaluates all 28 pairs of synthetic inputs, alternating each
// pair round-robin for equal time (so every transistor sees zero-signal
// probability 0, 50 or 100%), and returns results in x-axis order
// (1+2, 1+3, ... 7+8). This regenerates Figure 4.
//
// The netlist is evaluated exactly once: the 8 synthetic inputs ride in
// 8 lanes of one bit-parallel pass, each pair's report then reads its
// two lanes out of the captured level words (AnalyzeLanes). The 28 pure
// per-pair analyses fan out over a small worker pool, mirroring
// pipeline.RunBatch; results land at their pair's index so the output
// order is deterministic.
func (ad *Adder) SweepPairs(params nbti.Params) []PairResult {
	sim := ad.NewStressSim()
	ops := make([]Operands, NumSyntheticInputs)
	for k := 1; k <= NumSyntheticInputs; k++ {
		ops[k-1] = ad.SyntheticOperands(k)
	}
	words := sim.Levels(ad.InputWords(ops))

	type pair struct{ i, j int }
	var pairs []pair
	for i := 1; i <= NumSyntheticInputs; i++ {
		for j := i + 1; j <= NumSyntheticInputs; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	out := make([]PairResult, len(pairs))
	workers := min(runtime.GOMAXPROCS(0), sweepWorkers, len(pairs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(pairs) {
					return
				}
				p := pairs[idx]
				mask := uint64(1)<<uint(p.i-1) | uint64(1)<<uint(p.j-1)
				rep := sim.AnalyzeLanes(words, mask, params)
				out[idx] = PairResult{
					I: p.i, J: p.j,
					NarrowFullyStressed: rep.NarrowFullyStressed,
					WorstEffectiveBias:  rep.WorstEffectiveBias,
					Guardband:           rep.Guardband,
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// BestPair returns the pair minimizing the Figure 4 metric, breaking ties
// by lower worst effective bias and then by x-axis order. The paper finds
// inputs 1 and 8 (<0,0,0> and <1,1,1>).
func BestPair(results []PairResult) PairResult {
	if len(results) == 0 {
		panic("adder: no pair results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.NarrowFullyStressed < best.NarrowFullyStressed ||
			(r.NarrowFullyStressed == best.NarrowFullyStressed &&
				r.WorstEffectiveBias < best.WorstEffectiveBias) {
			best = r
		}
	}
	return best
}

// ScenarioResult is one bar of Figure 5.
type ScenarioResult struct {
	Name         string
	RealFraction float64 // fraction of time the adder computes real inputs
	Guardband    float64
	WorstBias    float64
}

// GuardbandScenario ages the adder with real operands for realFraction of
// the time and the synthetic pair (i, j) round-robin for the remaining
// idle time, then returns the guardband required. samples sets how many
// distinct real operand samples to draw; each is held for one time unit.
//
// realFraction 1.0 reproduces the "real inputs" bar of Figure 5 (inputs
// remain unchanged during idle periods); 0.30/0.21/0.11 reproduce the
// three utilization scenarios of §4.3.
//
// Real samples are packed 64 per bit-parallel pass (every sample shares
// the same per-sample slot, so one ApplyVec accounts a whole pack), and
// the two synthetic injections — constant across samples — are each
// applied once with their aggregate time. Stress totals are
// order-independent sums, so the report is bit-identical to the
// per-sample scalar loop; operands are still drawn one per sample in
// order, keeping the source's stream state unchanged.
func (ad *Adder) GuardbandScenario(src OperandSource, realFraction float64, i, j, samples int, params nbti.Params) ScenarioResult {
	if realFraction < 0 || realFraction > 1 {
		panic("adder: real fraction must be in [0,1]")
	}
	if samples < 1 {
		panic("adder: need at least one sample")
	}
	sim := ad.NewStressSim()
	// Time is interleaved at per-sample granularity: each real sample is
	// held for a slot proportional to realFraction, followed by the two
	// synthetic inputs sharing the idle remainder. Scaling by 1000 keeps
	// integer time without rounding drift.
	const scale = 1000
	realDt := uint64(realFraction * scale)
	idleDt := uint64(scale) - realDt
	words := make([]uint64, 2*ad.width+1)
	ops := make([]Operands, 0, 64)
	flush := func() {
		if len(ops) > 0 && realDt > 0 {
			ad.inputWordsInto(ops, words)
			sim.ApplyVec(words, len(ops), realDt)
		}
		ops = ops[:0]
	}
	for s := 0; s < samples; s++ {
		a, b, cin := src.NextOperands()
		ops = append(ops, Operands{A: a, B: b, Cin: cin})
		if len(ops) == 64 {
			flush()
		}
	}
	flush()
	if idleDt > 0 {
		half := idleDt / 2
		sim.Apply(ad.SyntheticInput(i), half*uint64(samples))
		sim.Apply(ad.SyntheticInput(j), (idleDt-half)*uint64(samples))
	}
	rep := sim.Analyze(params)
	name := fmt.Sprintf("%.0f%% real + %d + %d", realFraction*100, i, j)
	if realFraction >= 1 {
		name = "real inputs"
	}
	return ScenarioResult{
		Name:         name,
		RealFraction: realFraction,
		Guardband:    rep.Guardband,
		WorstBias:    rep.WorstEffectiveBias,
	}
}
