package adder

import (
	"fmt"
	"sort"

	"penelope/internal/circuit"
	"penelope/internal/nbti"
)

// NumSyntheticInputs is the size of the synthetic input set of §4.3: all
// combinations of InputA, InputB and CarryIn set to all-zeros or all-ones.
const NumSyntheticInputs = 8

// SyntheticInput returns synthetic input k (1-based, 1..8), numbered as
// in the paper: <InputA, InputB, CarryIn> in ascending binary order, so
// input 1 is <0,0,0>, input 2 is <0,0,1>, ... input 8 is <1,1,1>.
// "InputA is 0 (1)" means all its bits are 0 (1).
func (ad *Adder) SyntheticInput(k int) []bool {
	if k < 1 || k > NumSyntheticInputs {
		panic("adder: synthetic input index must be in 1..8")
	}
	bits := k - 1
	var a, b uint64
	mask := uint64(1)<<uint(ad.width) - 1
	if bits&4 != 0 {
		a = mask
	}
	if bits&2 != 0 {
		b = mask
	}
	cin := bits&1 != 0
	return ad.InputVector(a, b, cin)
}

// OperandSource yields "real" operand samples for the adder, e.g. sampled
// from workload traces (§4.3: "Actual inputs have been sampled from our
// 531 traces").
type OperandSource interface {
	NextOperands() (a, b uint64, cin bool)
}

// PairResult reports the Figure 4 metric for one synthetic input pair.
type PairResult struct {
	I, J int // 1-based synthetic input indices, I < J
	// NarrowFullyStressed is the fraction of all PMOS transistors that
	// are narrow and observe "0" 100% of the time when inputs I and J
	// alternate round-robin.
	NarrowFullyStressed float64
	// WorstEffectiveBias and Guardband characterize the pair beyond the
	// paper's plot, for tie-breaking and the Fig. 5 scenarios.
	WorstEffectiveBias float64
	Guardband          float64
}

// Label renders the pair like the Figure 4 x-axis ("1+8").
func (r PairResult) Label() string { return fmt.Sprintf("%d+%d", r.I, r.J) }

// SweepPairs evaluates all 28 pairs of synthetic inputs, alternating each
// pair round-robin for equal time (so every transistor sees zero-signal
// probability 0, 50 or 100%), and returns results in x-axis order
// (1+2, 1+3, ... 7+8). This regenerates Figure 4.
func (ad *Adder) SweepPairs(params nbti.Params) []PairResult {
	var out []PairResult
	for i := 1; i <= NumSyntheticInputs; i++ {
		for j := i + 1; j <= NumSyntheticInputs; j++ {
			sim := circuit.NewStressSim(ad.netlist)
			sim.Apply(ad.SyntheticInput(i), 1)
			sim.Apply(ad.SyntheticInput(j), 1)
			rep := sim.Analyze(params)
			out = append(out, PairResult{
				I: i, J: j,
				NarrowFullyStressed: rep.NarrowFullyStressed,
				WorstEffectiveBias:  rep.WorstEffectiveBias,
				Guardband:           rep.Guardband,
			})
		}
	}
	return out
}

// BestPair returns the pair minimizing the Figure 4 metric, breaking ties
// by lower worst effective bias and then by x-axis order. The paper finds
// inputs 1 and 8 (<0,0,0> and <1,1,1>).
func BestPair(results []PairResult) PairResult {
	if len(results) == 0 {
		panic("adder: no pair results")
	}
	sorted := make([]PairResult, len(results))
	copy(sorted, results)
	sort.SliceStable(sorted, func(a, b int) bool {
		ra, rb := sorted[a], sorted[b]
		if ra.NarrowFullyStressed != rb.NarrowFullyStressed {
			return ra.NarrowFullyStressed < rb.NarrowFullyStressed
		}
		return ra.WorstEffectiveBias < rb.WorstEffectiveBias
	})
	return sorted[0]
}

// ScenarioResult is one bar of Figure 5.
type ScenarioResult struct {
	Name         string
	RealFraction float64 // fraction of time the adder computes real inputs
	Guardband    float64
	WorstBias    float64
}

// GuardbandScenario ages the adder with real operands for realFraction of
// the time and the synthetic pair (i, j) round-robin for the remaining
// idle time, then returns the guardband required. samples sets how many
// distinct real operand samples to draw; each is held for one time unit.
//
// realFraction 1.0 reproduces the "real inputs" bar of Figure 5 (inputs
// remain unchanged during idle periods); 0.30/0.21/0.11 reproduce the
// three utilization scenarios of §4.3.
func (ad *Adder) GuardbandScenario(src OperandSource, realFraction float64, i, j, samples int, params nbti.Params) ScenarioResult {
	if realFraction < 0 || realFraction > 1 {
		panic("adder: real fraction must be in [0,1]")
	}
	if samples < 1 {
		panic("adder: need at least one sample")
	}
	sim := circuit.NewStressSim(ad.netlist)
	// Time is interleaved at per-sample granularity: each real sample is
	// held for a slot proportional to realFraction, followed by the two
	// synthetic inputs sharing the idle remainder. Scaling by 1000 keeps
	// integer time without rounding drift.
	const scale = 1000
	realDt := uint64(realFraction * scale)
	idleDt := uint64(scale) - realDt
	for s := 0; s < samples; s++ {
		a, b, cin := src.NextOperands()
		if realDt > 0 {
			sim.Apply(ad.InputVector(a, b, cin), realDt)
		}
		if idleDt > 0 {
			half := idleDt / 2
			sim.Apply(ad.SyntheticInput(i), half)
			sim.Apply(ad.SyntheticInput(j), idleDt-half)
		}
	}
	rep := sim.Analyze(params)
	name := fmt.Sprintf("%.0f%% real + %d + %d", realFraction*100, i, j)
	if realFraction >= 1 {
		name = "real inputs"
	}
	return ScenarioResult{
		Name:         name,
		RealFraction: realFraction,
		Guardband:    rep.Guardband,
		WorstBias:    rep.WorstEffectiveBias,
	}
}
