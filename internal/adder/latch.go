package adder

import (
	"penelope/internal/stats"
)

// LatchReport measures the input latches of the adder (§3.3): latches
// are bit cells too, and the values chosen to protect the combinational
// block also determine how the latches age. Alternating a complementary
// input pair during idle periods keeps the latches near balance as a
// side effect — the observation §4.3 closes with ("by alternating the
// selected pair of inputs during idle periods, latches hold similar
// amounts of time opposite values").
type LatchReport struct {
	// WorstBias is the worst cell bias across the 2·width+1 input
	// latch bits (operand A, operand B, carry-in).
	WorstBias float64
	// Biases is the per-latch zero bias, A bits then B bits then cin.
	Biases []float64
}

// LatchStudy ages the input latches under realFraction of real operands
// and round-robin injection of synthetic inputs idxs the rest of the
// time, mirroring GuardbandScenario but tracking the latch cells
// themselves rather than the combinational PMOS.
func (ad *Adder) LatchStudy(src OperandSource, realFraction float64, idxs []int, samples int) LatchReport {
	if realFraction < 0 || realFraction > 1 {
		panic("adder: real fraction must be in [0,1]")
	}
	if samples < 1 || len(idxs) == 0 {
		panic("adder: need samples and at least one synthetic input")
	}
	biasA := stats.NewBitBias(ad.width)
	biasB := stats.NewBitBias(ad.width)
	biasC := stats.NewBitBias(1)

	const scale = 1000
	realDt := uint64(realFraction * scale)
	idleDt := uint64(scale) - realDt
	rr := 0
	observe := func(vec []bool, dt uint64) {
		if dt == 0 {
			return
		}
		var a, b uint64
		for i := 0; i < ad.width; i++ {
			if vec[i] {
				a |= 1 << uint(i)
			}
			if vec[ad.width+i] {
				b |= 1 << uint(i)
			}
		}
		var c uint64
		if vec[2*ad.width] {
			c = 1
		}
		biasA.Observe(a, dt)
		biasB.Observe(b, dt)
		biasC.Observe(c, dt)
	}
	for s := 0; s < samples; s++ {
		a, b, cin := src.NextOperands()
		observe(ad.InputVector(a, b, cin), realDt)
		if idleDt > 0 {
			share := idleDt / uint64(len(idxs))
			rest := idleDt - share*uint64(len(idxs)-1)
			for k, idx := range idxs {
				dt := share
				if k == len(idxs)-1 {
					dt = rest
				}
				// Round-robin across idle periods: rotate which input
				// leads so shares even out over time.
				observe(ad.SyntheticInput(idxs[(k+rr)%len(idxs)]), dt)
				_ = idx
			}
			rr++
		}
	}

	var rep LatchReport
	rep.Biases = append(rep.Biases, biasA.Biases()...)
	rep.Biases = append(rep.Biases, biasB.Biases()...)
	rep.Biases = append(rep.Biases, biasC.Biases()...)
	rep.WorstBias = 0.5
	for _, b := range rep.Biases {
		if b > rep.WorstBias {
			rep.WorstBias = b
		}
		if 1-b > rep.WorstBias {
			rep.WorstBias = 1 - b
		}
	}
	return rep
}
