// Package adder builds the 32-bit Ladner-Fischer prefix adder of paper
// §4.3 as a gate-level netlist and evaluates NBTI stress on it.
//
// The Ladner-Fischer adder [Ladner & Fischer, JACM 1980] is a parallel
// prefix adder; we implement the minimum-depth member of the family
// (log₂(n) prefix levels, divide-and-conquer structure). The carry tree
// uses inclusive propagate (p = a OR b, valid for carry computation), the
// sum stage uses monolithic XOR3 cells, and ALU-style flag logic
// (zero-detect tree, overflow, negative) completes the block. High-fanout
// prefix nodes are widened automatically, mirroring the paper's
// observation that wide PMOS tolerate stress (§4.3).
package adder

import (
	"fmt"

	"penelope/internal/circuit"
)

// Adder is an elaborated Ladner-Fischer adder. The netlist is compiled
// once at construction into a bit-parallel program (prog), so Eval,
// EvalBatch and the aging sweeps evaluate 64 input vectors per pass;
// the interpreted netlist remains available as the scalar oracle.
type Adder struct {
	width   int
	netlist *circuit.Netlist
	prog    *circuit.Program
	a, b    []circuit.Signal
	cin     circuit.Signal
	sum     []circuit.Signal
	cout    circuit.Signal
	zero    circuit.Signal
	ovf     circuit.Signal
	neg     circuit.Signal
	levels  int
}

// New builds a Ladner-Fischer adder of the given width. Width must be a
// power of two in [4, 64]. Gates whose output fanout is at least
// wideFanout get wide PMOS transistors; pass 0 for the default of 5.
func New(width, wideFanout int) *Adder {
	if width < 4 || width > 64 || width&(width-1) != 0 {
		panic("adder: width must be a power of two in [4, 64]")
	}
	if wideFanout == 0 {
		wideFanout = 5
	}
	n := circuit.New()
	ad := &Adder{width: width, netlist: n}

	for i := 0; i < width; i++ {
		ad.a = append(ad.a, n.Input(fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < width; i++ {
		ad.b = append(ad.b, n.Input(fmt.Sprintf("b%d", i)))
	}
	ad.cin = n.Input("cin")

	// Preprocessing: generate and inclusive propagate per bit.
	g := make([]circuit.Signal, width)
	p := make([]circuit.Signal, width)
	for i := 0; i < width; i++ {
		g[i] = n.AND2(ad.a[i], ad.b[i], fmt.Sprintf("g%d", i))
		p[i] = n.OR2(ad.a[i], ad.b[i], fmt.Sprintf("p%d", i))
	}
	// Fold the carry-in into position 0: g0' = g0 OR (p0 AND cin). The
	// PMOS tapping cin here is the one the paper's motivation singles
	// out: real carry-in is "0" more than 90% of the time (§1.1).
	pcin := n.AND2(p[0], ad.cin, "p0cin")
	g0p := n.OR2(g[0], pcin, "g0'")

	// Prefix tree: minimum-depth Ladner-Fischer. At level k, positions
	// with bit k-1 set combine with the rightmost position of the
	// preceding 2^(k-1)-aligned block.
	G := make([]circuit.Signal, width)
	P := make([]circuit.Signal, width)
	copy(G, g)
	G[0] = g0p
	copy(P, p)
	for k := 1; 1<<uint(k-1) < width; k++ {
		ad.levels++
		nextG := make([]circuit.Signal, width)
		nextP := make([]circuit.Signal, width)
		copy(nextG, G)
		copy(nextP, P)
		for i := 0; i < width; i++ {
			if (i>>uint(k-1))&1 == 0 {
				continue
			}
			j := (i>>uint(k-1))<<uint(k-1) - 1 // rightmost of lower block
			t := n.AND2(P[i], G[j], fmt.Sprintf("t%d_%d", k, i))
			nextG[i] = n.OR2(G[i], t, fmt.Sprintf("G%d_%d", k, i))
			nextP[i] = n.AND2(P[i], P[j], fmt.Sprintf("P%d_%d", k, i))
		}
		G, P = nextG, nextP
	}

	// Carries: c_0 = cin, c_{i} = G[i-1] for i in 1..width (c_width is
	// the carry out).
	carries := make([]circuit.Signal, width+1)
	carries[0] = ad.cin
	for i := 1; i <= width; i++ {
		carries[i] = G[i-1]
	}
	ad.cout = carries[width]

	// Sum stage: monolithic XOR3 cells.
	ad.sum = make([]circuit.Signal, width)
	for i := 0; i < width; i++ {
		ad.sum[i] = n.XOR3(ad.a[i], ad.b[i], carries[i], fmt.Sprintf("s%d", i))
		n.MarkOutput(ad.sum[i])
	}
	n.MarkOutput(ad.cout)

	// ALU flags. The zero flag is a balanced OR tree over the sum bits
	// followed by an inverter; it is the one place a signal that is "0"
	// under both all-zeros and complemented operands survives, leaving
	// the handful of fully stressed transistors §4.3 mentions.
	or := ad.sum
	level := 0
	for len(or) > 1 {
		level++
		var next []circuit.Signal
		for i := 0; i+1 < len(or); i += 2 {
			next = append(next, n.OR2(or[i], or[i+1], fmt.Sprintf("z%d_%d", level, i/2)))
		}
		if len(or)%2 == 1 {
			next = append(next, or[len(or)-1])
		}
		or = next
	}
	ad.zero = n.INV(or[0], "zero")
	zbuf := n.BUF(ad.zero, "zero_out") // flag driver: consumes the zero signal
	n.MarkOutput(zbuf)

	ad.ovf = n.XOR2(carries[width-1], carries[width], "overflow")
	n.MarkOutput(ad.ovf)
	ad.neg = n.BUF(ad.sum[width-1], "negative")
	n.MarkOutput(ad.neg)

	n.AutoWiden(wideFanout)
	ad.prog = n.Compile()
	return ad
}

// New32 builds the paper's 32-bit configuration with default widening.
func New32() *Adder { return New(32, 0) }

// Width returns the operand width in bits.
func (ad *Adder) Width() int { return ad.width }

// Netlist exposes the underlying netlist.
func (ad *Adder) Netlist() *circuit.Netlist { return ad.netlist }

// NewStressSim returns a stress simulator over the adder netlist that
// shares the adder's compiled program instead of recompiling it —
// the constructor the aging sweeps use.
func (ad *Adder) NewStressSim() *circuit.StressSim {
	return circuit.NewStressSimCompiled(ad.netlist, ad.prog)
}

// PrefixLevels returns the number of prefix-tree levels (log₂ width).
func (ad *Adder) PrefixLevels() int { return ad.levels }

// InputVector packs operands and carry-in into a primary-input vector in
// the order the netlist expects.
func (ad *Adder) InputVector(a, b uint64, cin bool) []bool {
	v := make([]bool, 2*ad.width+1)
	for i := 0; i < ad.width; i++ {
		v[i] = a&(1<<uint(i)) != 0
		v[ad.width+i] = b&(1<<uint(i)) != 0
	}
	v[2*ad.width] = cin
	return v
}

// Operands is one adder input vector: two operands plus carry-in.
type Operands struct {
	A, B uint64
	Cin  bool
}

// InputWords transposes up to 64 operand triples into the word layout
// the compiled program consumes: one word per primary input, bit l
// holding lane l's value. Lanes beyond len(ops) are zero (and masked off
// by every consumer).
func (ad *Adder) InputWords(ops []Operands) []uint64 {
	if len(ops) > 64 {
		panic("adder: more than 64 lanes")
	}
	words := make([]uint64, 2*ad.width+1)
	ad.inputWordsInto(ops, words)
	return words
}

// inputWordsInto is InputWords filling a caller-provided slice, for the
// allocation-free aging loops.
func (ad *Adder) inputWordsInto(ops []Operands, words []uint64) {
	for i := range words {
		words[i] = 0
	}
	for l, op := range ops {
		bit := uint64(1) << uint(l)
		for i := 0; i < ad.width; i++ {
			if op.A&(1<<uint(i)) != 0 {
				words[i] |= bit
			}
			if op.B&(1<<uint(i)) != 0 {
				words[ad.width+i] |= bit
			}
		}
		if op.Cin {
			words[2*ad.width] |= bit
		}
	}
}

// Result is the decoded output of one adder evaluation.
type Result struct {
	Sum      uint64
	CarryOut bool
	Zero     bool
	Overflow bool
	Negative bool
}

// Eval runs the compiled netlist on the given operands and decodes the
// outputs. EvalScalar is the interpreted equivalent.
func (ad *Adder) Eval(a, b uint64, cin bool) Result {
	vals := ad.prog.EvalVec(ad.InputWords([]Operands{{A: a, B: b, Cin: cin}}))
	return ad.decodeLane(vals, 0)
}

// EvalScalar runs the interpreted (one bool per signal) netlist — the
// oracle the bit-parallel path is validated against.
func (ad *Adder) EvalScalar(a, b uint64, cin bool) Result {
	vals := ad.netlist.Eval(ad.InputVector(a, b, cin))
	var r Result
	for i, s := range ad.sum {
		if vals[s] {
			r.Sum |= 1 << uint(i)
		}
	}
	r.CarryOut = vals[ad.cout]
	r.Zero = vals[ad.zero]
	r.Overflow = vals[ad.ovf]
	r.Negative = vals[ad.neg]
	return r
}

// EvalBatch evaluates any number of operand triples through the
// bit-parallel program, 64 lanes per netlist pass, and returns one
// decoded Result per input in order.
func (ad *Adder) EvalBatch(ops []Operands) []Result {
	out := make([]Result, len(ops))
	if len(ops) == 0 {
		return out
	}
	words := make([]uint64, 2*ad.width+1)
	vals := make([]uint64, ad.prog.NumSignals())
	for base := 0; base < len(ops); base += 64 {
		chunk := ops[base:min(base+64, len(ops))]
		ad.inputWordsInto(chunk, words)
		ad.prog.EvalVecInto(words, vals)
		for l := range chunk {
			out[base+l] = ad.decodeLane(vals, l)
		}
	}
	return out
}

// decodeLane extracts lane l of a vector evaluation into a Result.
func (ad *Adder) decodeLane(vals []uint64, l int) Result {
	var r Result
	bit := uint64(1) << uint(l)
	for i, s := range ad.sum {
		if vals[s]&bit != 0 {
			r.Sum |= 1 << uint(i)
		}
	}
	r.CarryOut = vals[ad.cout]&bit != 0
	r.Zero = vals[ad.zero]&bit != 0
	r.Overflow = vals[ad.ovf]&bit != 0
	r.Negative = vals[ad.neg]&bit != 0
	return r
}

// Reference computes the expected outputs behaviourally, for validation.
func (ad *Adder) Reference(a, b uint64, cin bool) Result {
	mask := uint64(1)<<uint(ad.width) - 1
	a &= mask
	b &= mask
	c := uint64(0)
	if cin {
		c = 1
	}
	full := a + b + c
	sum := full & mask
	var r Result
	r.Sum = sum
	r.CarryOut = full>>uint(ad.width) != 0
	r.Zero = sum == 0
	r.Negative = sum>>(uint(ad.width)-1) != 0
	sign := uint64(1) << uint(ad.width-1)
	r.Overflow = (a&sign) == (b&sign) && (sum&sign) != (a&sign)
	return r
}
