// Package mitigation implements the reusable NBTI-mitigation strategy
// layer of paper §3: the Figure 3 casuistic that picks a technique per
// bit cell, the RINV repair register that supplies the values written
// into idle entries, duty counters implementing ALL1-K%, and the
// round-robin idle-input injector for combinational blocks.
//
// The concrete structures (register file, scheduler, caches) consume this
// package; it holds everything that is generic across them.
package mitigation

import "fmt"

// Technique enumerates the per-bit repair techniques of §3.2.2.
type Technique int

// Techniques, in the order Figure 3 considers them. SelfBalanced and
// Uncovered are the two non-repair outcomes §4.5 describes: tags and MOB
// ids need nothing, the valid bit can never be repaired.
const (
	// TechNone marks an unclassified bit.
	TechNone Technique = iota
	// TechALL1 writes "1" into the bit whenever its entry is free.
	TechALL1
	// TechALL0 writes "0" into the bit whenever its entry is free.
	TechALL0
	// TechALL1K writes "1" during K% of free time and "0" otherwise.
	TechALL1K
	// TechALL0K writes "0" during K% of free time and "1" otherwise.
	TechALL0K
	// TechISV writes inverted sampled values so entries hold inverted
	// contents half of the overall time.
	TechISV
	// TechSelfBalanced marks a bit whose activity balances itself
	// (register tags, MOB ids); no action is taken.
	TechSelfBalanced
	// TechUncovered marks a bit that can never be repaired because its
	// contents are always live (the valid bit).
	TechUncovered
	// NumTechniques counts the techniques, for dense per-technique
	// arrays.
	NumTechniques
)

var techniqueNames = map[Technique]string{
	TechNone: "none", TechALL1: "ALL1", TechALL0: "ALL0",
	TechALL1K: "ALL1-K%", TechALL0K: "ALL0-K%", TechISV: "ISV",
	TechSelfBalanced: "self-balanced", TechUncovered: "uncovered",
}

// String returns the paper's name for the technique.
func (t Technique) String() string {
	if s, ok := techniqueNames[t]; ok {
		return s
	}
	return fmt.Sprintf("technique(%d)", int(t))
}

// BitPlan is the classification outcome for one bit cell.
type BitPlan struct {
	Technique Technique
	// K applies to TechALL1K/TechALL0K: the fraction of free time the
	// repair value (1 for ALL1-K%, 0 for ALL0-K%) is written.
	K float64
}

// SelfBalancedTolerance is how close to 50% a bit's overall zero bias
// must already be for the classifier to leave it alone.
const SelfBalancedTolerance = 0.05

// ClassifyBit implements the Figure 3 casuistic for one bit cell.
//
// occupancy is the fraction of total time the entry is busy; busyZeroBias
// is the fraction of busy time the bit holds "0". Following the figure:
//
//	IF occupancy > 50%:
//	    IF occupancy·bias0 > 50%        -> ALL1   (can't fully balance)
//	    ELSE IF occupancy·bias1 > 50%   -> ALL0
//	    ELSE IF bias0 > bias1           -> ALL1-K%
//	    ELSE                            -> ALL0-K%
//	ELSE                                -> ISV
//
// K is chosen so the overall bias lands exactly on 50% (§4.5: "K is
// computed as the value that would give us ideal balancing"). A bit whose
// overall bias is already within SelfBalancedTolerance of 50% is left
// alone (the register-tag / MOB-id case of §4.5).
func ClassifyBit(occupancy, busyZeroBias float64) BitPlan {
	if occupancy < 0 || occupancy > 1 || busyZeroBias < 0 || busyZeroBias > 1 {
		panic("mitigation: occupancy and bias must be in [0,1]")
	}
	// Overall bias if nothing is done and idle contents mirror the data
	// distribution (stale values).
	overall := busyZeroBias
	if d := overall - 0.5; d >= -SelfBalancedTolerance && d <= SelfBalancedTolerance {
		return BitPlan{Technique: TechSelfBalanced}
	}
	if occupancy >= 1 {
		return BitPlan{Technique: TechUncovered}
	}
	if occupancy > 0.5 {
		bias0 := busyZeroBias
		bias1 := 1 - busyZeroBias
		switch {
		case occupancy*bias0 > 0.5:
			return BitPlan{Technique: TechALL1, K: 1}
		case occupancy*bias1 > 0.5:
			return BitPlan{Technique: TechALL0, K: 1}
		case bias0 > bias1:
			return BitPlan{Technique: TechALL1K, K: solveK(occupancy, bias0)}
		default:
			return BitPlan{Technique: TechALL0K, K: solveK(occupancy, bias1)}
		}
	}
	return BitPlan{Technique: TechISV}
}

// solveK returns the fraction of free time the repair value must be held
// for perfect balancing: occ·bias + (1-occ)·(1-K) = 0.5, with bias the
// busy-time probability of the value being repaired against.
func solveK(occupancy, bias float64) float64 {
	free := 1 - occupancy
	k := 1 - (0.5-occupancy*bias)/free
	if k < 0 {
		return 0
	}
	if k > 1 {
		return 1
	}
	return k
}

// PredictBias returns the overall zero bias a bit will settle at under
// the plan, given its occupancy and busy-time zero bias. Used by tests
// and the experiment drivers to check measured results against theory.
func PredictBias(p BitPlan, occupancy, busyZeroBias float64) float64 {
	free := 1 - occupancy
	busy := occupancy * busyZeroBias
	switch p.Technique {
	case TechALL1:
		return busy // free time holds "1": contributes no zero time
	case TechALL0:
		return busy + free
	case TechALL1K:
		return busy + free*(1-p.K)
	case TechALL0K:
		return busy + free*p.K
	case TechISV:
		// Half the overall time holds inverted contents: perfect
		// balance when occupancy ≤ 50%.
		if occupancy <= 0.5 {
			return 0.5
		}
		return busy + free*(1-busyZeroBias)
	case TechSelfBalanced, TechUncovered, TechNone:
		return busyZeroBias
	default:
		panic("mitigation: unknown technique")
	}
}
