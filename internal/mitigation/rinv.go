package mitigation

// RINV is the per-structure repair register of §3.2: it holds the value
// written into entries when they are released. For ISV fields it stores
// inverted sampled values refreshed periodically from a write port; for
// ALL1/ALL0/ALL1-K% fields its bits are driven constant or by a duty
// counter.
type RINV struct {
	width   int
	mask    uint64
	value   uint64
	samples uint64
	period  uint64 // refresh period in cycles (0 = refresh on every offer)
	nextAt  uint64 // next cycle at which a sample is accepted
}

// NewRINV returns a repair register of the given width (1..64 bits)
// refreshed at most once per period cycles. The paper refreshes "every
// one million cycles" for caches and every few thousands for the
// scheduler; pass 0 to accept every offered sample.
func NewRINV(width int, period uint64) *RINV {
	if width < 1 || width > 64 {
		panic("mitigation: RINV width must be in [1, 64]")
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	return &RINV{width: width, mask: mask, period: period}
}

// Width returns the register width in bits.
func (r *RINV) Width() int { return r.width }

// Offer presents a value flowing through a write port at the given cycle.
// If the refresh period has elapsed, RINV captures the inverted value.
// It returns true when the sample was taken.
func (r *RINV) Offer(value uint64, cycle uint64) bool {
	if cycle < r.nextAt {
		return false
	}
	r.value = ^value & r.mask
	r.samples++
	r.nextAt = cycle + r.period
	return true
}

// Value returns the current repair value (the inversion of the last
// sampled data).
func (r *RINV) Value() uint64 { return r.value }

// Samples returns how many samples have been captured.
func (r *RINV) Samples() uint64 { return r.samples }

// DutyCounter drives an ALL1-K% (or ALL0-K%) bit: a small free-running
// counter whose output is high for K% of its period (§4.5 uses four
// counters of up to 5 bits for K = 50, 60, 75 and 95%).
type DutyCounter struct {
	period int
	high   int
	pos    int
}

// NewDutyCounter returns a counter with the given period (2..32, the
// paper's "up to 5 bits") outputting 1 for round(k·period) ticks per
// revolution.
func NewDutyCounter(period int, k float64) *DutyCounter {
	if period < 2 || period > 32 {
		panic("mitigation: duty counter period must be in [2, 32]")
	}
	if k < 0 || k > 1 {
		panic("mitigation: duty must be in [0, 1]")
	}
	high := int(k*float64(period) + 0.5)
	return &DutyCounter{period: period, high: high}
}

// Output returns the current level without advancing.
func (c *DutyCounter) Output() bool { return c.pos < c.high }

// Tick returns the current level and advances the counter.
func (c *DutyCounter) Tick() bool {
	out := c.Output()
	c.pos++
	if c.pos >= c.period {
		c.pos = 0
	}
	return out
}

// Duty returns the realized duty cycle (high/period).
func (c *DutyCounter) Duty() float64 { return float64(c.high) / float64(c.period) }

// IdleInjector cycles a combinational block through a fixed set of
// synthetic inputs during idle periods (§3.1): "A simple implementation
// sets one of such inputs in each idle period in a round-robin fashion."
type IdleInjector struct {
	inputs [][]bool
	next   int
	count  uint64
}

// NewIdleInjector returns an injector over the given input vectors. At
// least one input is required; vectors are used round-robin, one per
// idle period.
func NewIdleInjector(inputs [][]bool) *IdleInjector {
	if len(inputs) == 0 {
		panic("mitigation: idle injector needs at least one input")
	}
	for _, in := range inputs[1:] {
		if len(in) != len(inputs[0]) {
			panic("mitigation: idle injector inputs must share a width")
		}
	}
	return &IdleInjector{inputs: inputs}
}

// NextInput returns the synthetic input to drive during the next idle
// period and advances the rotation.
func (i *IdleInjector) NextInput() []bool {
	in := i.inputs[i.next]
	i.next = (i.next + 1) % len(i.inputs)
	i.count++
	return in
}

// Injections returns how many idle periods have been served.
func (i *IdleInjector) Injections() uint64 { return i.count }

// NumInputs returns the rotation size.
func (i *IdleInjector) NumInputs() int { return len(i.inputs) }
