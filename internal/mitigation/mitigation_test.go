package mitigation

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTechniqueString(t *testing.T) {
	if TechALL1K.String() != "ALL1-K%" || TechISV.String() != "ISV" {
		t.Error("technique names wrong")
	}
	if Technique(99).String() == "" {
		t.Error("unknown technique should render")
	}
}

// TestClassifyFigure3 walks the branches of the Figure 3 casuistic.
func TestClassifyFigure3(t *testing.T) {
	tests := []struct {
		name      string
		occupancy float64
		bias0     float64
		want      Technique
	}{
		// occupancy·bias0 > 0.5: even all-ones idle can't balance.
		{"ALL1 branch", 0.9, 0.9, TechALL1},
		// occupancy·bias1 > 0.5.
		{"ALL0 branch", 0.9, 0.1, TechALL0},
		// busy-biased to 0 but balanceable (occupancy·bias0 < 50%).
		{"ALL1-K branch", 0.75, 0.65, TechALL1K},
		// busy-biased to 1 but balanceable.
		{"ALL0-K branch", 0.75, 0.35, TechALL0K},
		// Free more than half the time.
		{"ISV branch", 0.4, 0.9, TechISV},
		{"ISV branch high bias1", 0.3, 0.05, TechISV},
		// Already balanced: nothing to do.
		{"self-balanced", 0.8, 0.51, TechSelfBalanced},
		// Always busy and imbalanced: can't repair.
		{"uncovered valid bit", 1.0, 0.9, TechUncovered},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ClassifyBit(tc.occupancy, tc.bias0)
			if got.Technique != tc.want {
				t.Errorf("ClassifyBit(%v, %v) = %v, want %v",
					tc.occupancy, tc.bias0, got.Technique, tc.want)
			}
		})
	}
}

// TestClassifyPaperExample checks §3.2 situation II: "if a given bit cell
// is busy 75% of the time and holds a 0 67% of the time ... we can store
// a 1 during idle time for perfect balancing". The example sits exactly
// on the 50%-of-total-time boundary (0.75·0.667 ≈ 0.50), so we test just
// inside it, where the classifier must pick ALL1-K% with K ≈ 1.
func TestClassifyPaperExample(t *testing.T) {
	p := ClassifyBit(0.75, 0.66)
	if p.Technique != TechALL1K {
		t.Fatalf("technique = %v, want ALL1-K%%", p.Technique)
	}
	// busy zero time = 0.75·0.66 ≈ 0.495: idle must hold "1" almost
	// always.
	if p.K < 0.95 {
		t.Errorf("K = %v, want ≈ 1 (hold 1 during nearly all idle time)", p.K)
	}
	if got := PredictBias(p, 0.75, 0.66); !almostEqual(got, 0.5, 0.01) {
		t.Errorf("predicted bias = %v, want 0.5", got)
	}
}

func TestClassifyValidatesInput(t *testing.T) {
	for _, f := range []func(){
		func() { ClassifyBit(-0.1, 0.5) },
		func() { ClassifyBit(0.5, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSolveKPerfectBalance(t *testing.T) {
	// Property: whenever ALL1-K%/ALL0-K% is chosen, the predicted bias
	// is exactly 0.5.
	f := func(occRaw, biasRaw uint8) bool {
		occ := 0.5 + float64(occRaw)/255*0.49 // (0.5, 0.99]
		bias := float64(biasRaw) / 255
		p := ClassifyBit(occ, bias)
		if p.Technique != TechALL1K && p.Technique != TechALL0K {
			return true
		}
		return almostEqual(PredictBias(p, occ, bias), 0.5, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictBiasISV(t *testing.T) {
	if got := PredictBias(BitPlan{Technique: TechISV}, 0.4, 0.9); got != 0.5 {
		t.Errorf("ISV predicted bias = %v, want 0.5", got)
	}
}

func TestPredictBiasImprovesWorstCase(t *testing.T) {
	// Property: for any repairable bit, the technique chosen by Figure 3
	// never worsens the distance from perfect balance.
	f := func(occRaw, biasRaw uint8) bool {
		occ := float64(occRaw) / 255 * 0.99
		bias := float64(biasRaw) / 255
		p := ClassifyBit(occ, bias)
		before := math.Abs(bias - 0.5)
		after := math.Abs(PredictBias(p, occ, bias) - 0.5)
		return after <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRINVSamplingPeriod(t *testing.T) {
	r := NewRINV(8, 100)
	if !r.Offer(0x0F, 0) {
		t.Fatal("first offer must be accepted")
	}
	if got := r.Value(); got != 0xF0 {
		t.Fatalf("RINV value = %#x, want inverted 0xF0", got)
	}
	if r.Offer(0xFF, 50) {
		t.Fatal("offer within period must be rejected")
	}
	if !r.Offer(0xFF, 100) {
		t.Fatal("offer at period boundary must be accepted")
	}
	if got := r.Value(); got != 0x00 {
		t.Fatalf("RINV value = %#x, want 0x00", got)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", r.Samples())
	}
	if r.Width() != 8 {
		t.Error("width mismatch")
	}
}

func TestRINVMasksWidth(t *testing.T) {
	r := NewRINV(4, 0)
	r.Offer(0x00, 0)
	if got := r.Value(); got != 0x0F {
		t.Errorf("4-bit RINV value = %#x, want 0x0F", got)
	}
	r64 := NewRINV(64, 0)
	r64.Offer(0, 0)
	if got := r64.Value(); got != ^uint64(0) {
		t.Errorf("64-bit RINV value = %#x", got)
	}
	for _, bad := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRINV(%d) did not panic", bad)
				}
			}()
			NewRINV(bad, 0)
		}()
	}
}

func TestDutyCounter(t *testing.T) {
	c := NewDutyCounter(20, 0.75)
	high := 0
	for i := 0; i < 200; i++ {
		if c.Tick() {
			high++
		}
	}
	if got := float64(high) / 200; !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("realized duty = %v, want 0.75", got)
	}
	if !almostEqual(c.Duty(), 0.75, 1e-9) {
		t.Errorf("Duty() = %v", c.Duty())
	}
}

func TestDutyCounterPaperKs(t *testing.T) {
	// §4.5 uses K = 50, 60, 75, 95% with counters of up to 5 bits.
	for _, k := range []float64{0.50, 0.60, 0.75, 0.95} {
		c := NewDutyCounter(20, k)
		if !almostEqual(c.Duty(), k, 0.025) {
			t.Errorf("K=%v realized as %v", k, c.Duty())
		}
	}
}

func TestDutyCounterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDutyCounter(1, 0.5) },
		func() { NewDutyCounter(64, 0.5) },
		func() { NewDutyCounter(8, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIdleInjectorRoundRobin(t *testing.T) {
	a := []bool{false, false}
	b := []bool{true, true}
	inj := NewIdleInjector([][]bool{a, b})
	if inj.NumInputs() != 2 {
		t.Fatal("NumInputs wrong")
	}
	for i := 0; i < 6; i++ {
		got := inj.NextInput()
		want := a
		if i%2 == 1 {
			want = b
		}
		if got[0] != want[0] {
			t.Fatalf("injection %d = %v, want %v", i, got, want)
		}
	}
	if inj.Injections() != 6 {
		t.Errorf("Injections = %d, want 6", inj.Injections())
	}
}

func TestIdleInjectorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewIdleInjector(nil) },
		func() { NewIdleInjector([][]bool{{true}, {true, false}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
