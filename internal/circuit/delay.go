package circuit

import "math"

// PathStats describes the critical (deepest) combinational path of a
// netlist: the number of gates along the longest input→output chain and
// how many of them carry narrow PMOS transistors. NBTI only slows the
// narrow devices (§2.1 "Geometry"), so the narrow fraction of the
// critical path is what converts an accumulated VTH shift into a
// cycle-time guardband (DelayModel).
type PathStats struct {
	Depth  int `json:"depth"`  // gates on the critical path
	Narrow int `json:"narrow"` // critical-path gates with narrow PMOS
}

// NarrowFraction returns the fraction of the critical path's gates that
// carry narrow PMOS transistors.
func (s PathStats) NarrowFraction() float64 {
	if s.Depth == 0 {
		return 0
	}
	return float64(s.Narrow) / float64(s.Depth)
}

// CriticalPath computes the deepest gate chain from any primary input or
// constant to any signal, counting each logic gate as one unit delay.
// Input and constant pseudo-gates contribute no depth. Ties are broken
// toward the earliest-built gate, so the result is deterministic for a
// deterministic builder.
func (n *Netlist) CriticalPath() PathStats {
	depth := make([]int32, n.NumSignals())
	from := make([]int32, n.NumSignals()) // predecessor signal on the deepest path, -1 at sources
	for i := range from {
		from[i] = -1
	}
	deepest := int32(-1) // signal ending the critical path
	// Gates are appended in build order, which is topological: a gate's
	// inputs always exist before the gate, so one forward pass suffices.
	for _, g := range n.Gates() {
		if g.Kind == KindInput || g.Kind == KindConst {
			continue
		}
		best := int32(-1)
		d := int32(0)
		for _, in := range g.In {
			if depth[in] > d || best < 0 {
				d = depth[in]
				best = int32(in)
			}
		}
		out := int32(g.Out)
		depth[out] = d + 1
		from[out] = best
		if deepest < 0 || depth[out] > depth[deepest] {
			deepest = out
		}
	}
	var stats PathStats
	for s := deepest; s >= 0; s = from[s] {
		g := n.Gate(Signal(s))
		if g.Kind == KindInput || g.Kind == KindConst {
			break
		}
		stats.Depth++
		if !g.Wide {
			stats.Narrow++
		}
	}
	return stats
}

// DelayModel maps an accumulated relative VTH shift to the cycle-time
// guardband a block needs, through a first-order gate-delay model of the
// compiled circuit: each NBTI-susceptible (narrow-PMOS) gate on the
// critical path slows by 1/(1-Sensitivity·shift) — the alpha-power-law
// response linearized around the nominal operating point — while wide
// gates are unaffected. With Susceptible the fraction of critical-path
// delay on narrow gates, the path delay ratio is
//
//	ratio(shift) = (1-Susceptible) + Susceptible/(1 - Sensitivity·shift)
//
// and the guardband is ratio-1: zero for a fresh circuit and convex
// increasing in the shift.
type DelayModel struct {
	// Susceptible is the fraction of critical-path delay carried by
	// narrow-PMOS gates.
	Susceptible float64 `json:"susceptible"`
	// Sensitivity is the per-gate delay sensitivity to relative VTH
	// shift, calibrated so the end-of-life DC-stress shift costs exactly
	// the measured worst-case guardband.
	Sensitivity float64 `json:"sensitivity"`
	// MaxShift is the shift the model was calibrated at; larger shifts
	// are clamped (the linearization is not valid far beyond it, and the
	// clamp keeps the mapping total).
	MaxShift float64 `json:"max_shift"`
}

// NewDelayModel calibrates a delay model for a circuit with the given
// critical path: Guardband(maxShift) = maxGuardband exactly, anchoring
// the model to the same end-of-life measurement the nbti calibration
// layer uses (20% guardband at the 10% DC-stress VTH shift).
func NewDelayModel(path PathStats, maxShift, maxGuardband float64) DelayModel {
	if maxShift <= 0 || maxGuardband <= 0 {
		panic("circuit: delay model anchors must be positive")
	}
	f := path.NarrowFraction()
	if f <= 0 {
		// A path with no susceptible gates never ages; keep the model
		// total with a zero response.
		return DelayModel{MaxShift: maxShift}
	}
	// Solve (f/(1-k·maxShift)) - f = maxGuardband for k.
	k := maxGuardband / ((f + maxGuardband) * maxShift)
	return DelayModel{Susceptible: f, Sensitivity: k, MaxShift: maxShift}
}

// Guardband returns the cycle-time guardband required at the given
// relative VTH shift. Shifts beyond ~2x the calibration anchor clamp so
// the response stays finite under extreme process variation.
func (m DelayModel) Guardband(shift float64) float64 {
	if shift <= 0 || m.Susceptible == 0 {
		return 0
	}
	if max := 2 * m.MaxShift; shift > max {
		shift = max
	}
	den := 1 - m.Sensitivity*shift
	if den < 0.1 {
		den = 0.1
	}
	return m.Susceptible/den - m.Susceptible
}

// Valid reports whether the model came from NewDelayModel (or is the
// zero-response model) rather than an uninitialized struct.
func (m DelayModel) Valid() bool {
	return m.MaxShift > 0 && m.Susceptible >= 0 && m.Susceptible <= 1 &&
		m.Sensitivity >= 0 && !math.IsNaN(m.Sensitivity)
}
