package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"penelope/internal/nbti"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestInverterStress(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.INV(a, "inv")
	sim := NewStressSim(n)
	if sim.NumTransistors() != 1 {
		t.Fatalf("inverter has %d PMOS, want 1", sim.NumTransistors())
	}
	sim.Apply([]bool{false}, 3) // gate sees "0": stress
	sim.Apply([]bool{true}, 1)  // gate sees "1": relax
	tr := sim.Transistors()[0]
	if got := tr.ZeroProb(); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("ZeroProb = %v, want 0.75", got)
	}
	if sim.TotalTime() != 4 {
		t.Errorf("TotalTime = %d, want 4", sim.TotalTime())
	}
}

func TestTransistorCounts(t *testing.T) {
	// Each gate kind must elaborate to its template size.
	wants := map[Kind]int{
		KindINV: 1, KindBUF: 2, KindNAND2: 2, KindNOR2: 2,
		KindAND2: 3, KindOR2: 3, KindXOR2: 4, KindXNOR2: 4,
		KindMUX2: 4, KindXOR3: 6,
	}
	for kind, want := range wants {
		n := New()
		ins := []Signal{n.Input("a"), n.Input("b"), n.Input("c")}
		switch kind.arity() {
		case 1:
			n.addGate(kind, "g", ins[0])
		case 2:
			n.addGate(kind, "g", ins[0], ins[1])
		case 3:
			n.addGate(kind, "g", ins[0], ins[1], ins[2])
		}
		if got := NewStressSim(n).NumTransistors(); got != want {
			t.Errorf("%v: %d PMOS, want %d", kind, got, want)
		}
	}
}

func TestInputsHaveNoTransistors(t *testing.T) {
	n := New()
	n.Input("a")
	n.Const(true, "one")
	if got := NewStressSim(n).NumTransistors(); got != 0 {
		t.Errorf("inputs/constants have %d PMOS, want 0", got)
	}
}

func TestAND2InternalNodeStress(t *testing.T) {
	// AND2 = NAND2 + INV; the inverter PMOS sees the complement of the
	// AND output, so it is stressed when the AND output is 1.
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	n.AND2(a, b, "and")
	sim := NewStressSim(n)
	sim.Apply([]bool{true, true}, 1) // out=1 -> internal node 0 -> stressed
	var internal *Transistor
	for i := range sim.Transistors() {
		if sim.Transistors()[i].Tap == 2 {
			internal = &sim.Transistors()[i]
		}
	}
	if internal == nil {
		t.Fatal("AND2 lacks internal-node transistor")
	}
	if got := internal.ZeroProb(); got != 1 {
		t.Errorf("internal PMOS zero prob = %v, want 1", got)
	}
	sim.Apply([]bool{false, true}, 1) // out=0 -> internal node 1 -> relaxed
	if got := internal.ZeroProb(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("internal PMOS zero prob = %v, want 0.5", got)
	}
}

func TestXORComplementTaps(t *testing.T) {
	// XOR2 has taps on both inputs and both complements: alternating
	// between (0,0) and (1,1) balances every tap at 50%.
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	n.XOR2(a, b, "x")
	sim := NewStressSim(n)
	sim.Apply([]bool{false, false}, 1)
	sim.Apply([]bool{true, true}, 1)
	for i, tr := range sim.Transistors() {
		if got := tr.ZeroProb(); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("tap %d zero prob = %v, want 0.5", i, got)
		}
	}
}

func TestStressSimReset(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.INV(a, "inv")
	sim := NewStressSim(n)
	sim.Apply([]bool{false}, 5)
	sim.Reset()
	if sim.TotalTime() != 0 || sim.Transistors()[0].ZeroProb() != 0 {
		t.Error("Reset did not clear stress")
	}
	sim.Apply([]bool{false}, 0) // zero dt is a no-op
	if sim.TotalTime() != 0 {
		t.Error("zero-dt Apply must not accumulate")
	}
}

func TestAnalyzeReport(t *testing.T) {
	p := nbti.DefaultParams()
	n := New()
	a := n.Input("a")
	x := n.INV(a, "narrow") // stressed 100%
	n.SetWide(n.INV(x, "wide"), true)
	sim := NewStressSim(n)
	sim.Apply([]bool{false}, 10) // a=0: narrow stressed; x=1: wide relaxed
	rep := sim.Analyze(p)
	if rep.Transistors != 2 || rep.Narrow != 1 || rep.Wide != 1 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if rep.WorstNarrowZeroProb != 1 {
		t.Errorf("WorstNarrowZeroProb = %v, want 1", rep.WorstNarrowZeroProb)
	}
	if !almostEqual(rep.NarrowFullyStressed, 0.5, 1e-12) {
		t.Errorf("NarrowFullyStressed = %v, want 0.5", rep.NarrowFullyStressed)
	}
	if !almostEqual(rep.Guardband, p.MaxGuardband, 1e-12) {
		t.Errorf("Guardband = %v, want max", rep.Guardband)
	}
	if rep.String() == "" {
		t.Error("report should render")
	}
}

func TestAnalyzeWideDiscount(t *testing.T) {
	// A wide transistor at 100% zero-signal probability must report a
	// lower effective bias than a narrow one at 50% (§4.3).
	p := nbti.DefaultParams()
	n := New()
	a := n.Input("a")
	n.SetWide(n.INV(a, "wide"), true)
	sim := NewStressSim(n)
	sim.Apply([]bool{false}, 10)
	rep := sim.Analyze(p)
	if rep.WorstEffectiveBias >= 0.75 {
		t.Errorf("wide effective bias = %v, want < 0.75", rep.WorstEffectiveBias)
	}
	if rep.NarrowFullyStressed != 0 {
		t.Error("no narrow transistor should be counted")
	}
}

func TestStressPropertyZeroProbBounded(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	sim := NewStressSim(n)
	f := func(vs []uint8) bool {
		for _, v := range vs {
			sim.Apply([]bool{v&1 != 0, v&2 != 0, v&4 != 0}, uint64(v%5)+1)
		}
		for _, tr := range sim.Transistors() {
			zp := tr.ZeroProb()
			if zp < 0 || zp > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
