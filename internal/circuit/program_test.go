package circuit

import (
	"math/rand"
	"testing"

	"penelope/internal/nbti"
)

// randomNetlist builds a seeded random netlist: a few inputs and
// constants, then gates of every kind over randomly chosen existing
// signals. Construction order is topological by design, so any signal
// choice is legal.
func randomNetlist(rng *rand.Rand, numInputs, numGates int) *Netlist {
	n := New()
	var sigs []Signal
	for i := 0; i < numInputs; i++ {
		sigs = append(sigs, n.Input("in"))
	}
	sigs = append(sigs, n.Const(false, "zero"), n.Const(true, "one"))
	pick := func() Signal { return sigs[rng.Intn(len(sigs))] }
	kinds := []Kind{KindINV, KindBUF, KindNAND2, KindNOR2, KindAND2,
		KindOR2, KindXOR2, KindXNOR2, KindMUX2, KindXOR3}
	for i := 0; i < numGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var s Signal
		switch k.arity() {
		case 1:
			s = n.addGate(k, "g", pick())
		case 2:
			s = n.addGate(k, "g", pick(), pick())
		case 3:
			s = n.addGate(k, "g", pick(), pick(), pick())
		}
		if rng.Intn(4) == 0 {
			n.SetWide(s, true)
		}
		sigs = append(sigs, s)
	}
	return n
}

// randomLaneInputs draws per-lane scalar input vectors plus their packed
// word form.
func randomLaneInputs(rng *rand.Rand, numInputs, lanes int) ([][]bool, []uint64) {
	vectors := make([][]bool, lanes)
	for l := range vectors {
		vec := make([]bool, numInputs)
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		vectors[l] = vec
	}
	return vectors, PackBools(vectors, numInputs)
}

// TestEvalVecMatchesScalar drives randomized netlists through the
// compiled bit-parallel evaluator and checks every lane of every signal
// against the interpreted scalar oracle.
func TestEvalVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := randomNetlist(rng, 1+rng.Intn(8), 1+rng.Intn(120))
		prog := n.Compile()
		lanes := 1 + rng.Intn(64)
		vectors, words := randomLaneInputs(rng, len(n.Inputs()), lanes)
		vals := prog.EvalVec(words)
		if len(vals) != n.NumSignals() {
			t.Fatalf("trial %d: EvalVec returned %d words, want %d", trial, len(vals), n.NumSignals())
		}
		for l := 0; l < lanes; l++ {
			ref := n.Eval(vectors[l])
			for s := range ref {
				got := vals[s]&(1<<uint(l)) != 0
				if got != ref[s] {
					t.Fatalf("trial %d lane %d signal %d: vec=%v scalar=%v", trial, l, s, got, ref[s])
				}
			}
		}
	}
}

// TestEvalVecConstants checks constant gates drive every lane.
func TestEvalVecConstants(t *testing.T) {
	n := New()
	zero := n.Const(false, "zero")
	one := n.Const(true, "one")
	x := n.XOR2(zero, one, "x")
	vals := n.Compile().EvalVec(nil)
	if vals[zero] != 0 {
		t.Errorf("const 0 word = %#x, want 0", vals[zero])
	}
	if vals[one] != ^uint64(0) {
		t.Errorf("const 1 word = %#x, want all ones", vals[one])
	}
	if vals[x] != ^uint64(0) {
		t.Errorf("0 xor 1 word = %#x, want all ones", vals[x])
	}
}

// TestEvalVecMUX2XOR3Exhaustive packs the full 3-input truth table into
// 8 lanes and checks the composite cells lane by lane.
func TestEvalVecMUX2XOR3Exhaustive(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	c := n.Input("c")
	mux := n.MUX2(a, b, c, "mux")
	xor3 := n.XOR3(a, b, c, "xor3")
	vectors := make([][]bool, 8)
	for v := range vectors {
		vectors[v] = Uint64ToBits(uint64(v), 3)
	}
	vals := n.Compile().EvalVec(PackBools(vectors, 3))
	for v := 0; v < 8; v++ {
		in := vectors[v]
		wantMux := in[1]
		if in[0] {
			wantMux = in[2]
		}
		if got := vals[mux]&(1<<uint(v)) != 0; got != wantMux {
			t.Errorf("mux2 lane %d = %v, want %v", v, got, wantMux)
		}
		wantXor3 := in[0] != in[1] != in[2]
		if got := vals[xor3]&(1<<uint(v)) != 0; got != wantXor3 {
			t.Errorf("xor3 lane %d = %v, want %v", v, got, wantXor3)
		}
	}
}

// TestApplyVecMatchesApply checks that one ApplyVec over k lanes leaves
// exactly the accumulated stress of k scalar Apply calls, including
// partial lane counts, and that Analyze then agrees bit for bit.
func TestApplyVecMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	params := nbti.DefaultParams()
	for trial := 0; trial < 20; trial++ {
		n := randomNetlist(rng, 1+rng.Intn(6), 1+rng.Intn(80))
		vec := NewStressSim(n)
		ref := NewStressSim(n)
		for round := 0; round < 3; round++ {
			lanes := 1 + rng.Intn(64)
			dt := uint64(1 + rng.Intn(1000))
			vectors, words := randomLaneInputs(rng, len(n.Inputs()), lanes)
			vec.ApplyVec(words, lanes, dt)
			for _, v := range vectors {
				ref.Apply(v, dt)
			}
		}
		if vec.TotalTime() != ref.TotalTime() {
			t.Fatalf("trial %d: total time %d != %d", trial, vec.TotalTime(), ref.TotalTime())
		}
		for i := range vec.transistors {
			v, r := vec.transistors[i], ref.transistors[i]
			if v.zeroTime != r.zeroTime || v.totalTime != r.totalTime {
				t.Fatalf("trial %d transistor %d: vec (%d/%d) != scalar (%d/%d)",
					trial, i, v.zeroTime, v.totalTime, r.zeroTime, r.totalTime)
			}
		}
		if vec.Analyze(params) != ref.Analyze(params) {
			t.Fatalf("trial %d: Analyze reports differ", trial)
		}
	}
}

// TestAnalyzeLanesMatchesAnalyze checks that analyzing a lane subset of
// captured level words equals resetting and replaying those lanes
// through the scalar path.
func TestAnalyzeLanesMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	params := nbti.DefaultParams()
	for trial := 0; trial < 20; trial++ {
		n := randomNetlist(rng, 1+rng.Intn(6), 1+rng.Intn(80))
		sim := NewStressSim(n)
		lanes := 2 + rng.Intn(63)
		vectors, words := randomLaneInputs(rng, len(n.Inputs()), lanes)
		levels := sim.Levels(words)
		var mask uint64
		for l := 0; l < lanes; l++ {
			if rng.Intn(2) == 1 {
				mask |= 1 << uint(l)
			}
		}
		got := sim.AnalyzeLanes(levels, mask, params)
		ref := NewStressSim(n)
		for l := 0; l < lanes; l++ {
			if mask&(1<<uint(l)) != 0 {
				ref.Apply(vectors[l], 1)
			}
		}
		if want := ref.Analyze(params); got != want {
			t.Fatalf("trial %d mask %#x: AnalyzeLanes %+v != scalar %+v", trial, mask, got, want)
		}
		// AnalyzeLanes must not disturb accumulated state.
		if sim.TotalTime() != 0 {
			t.Fatalf("trial %d: AnalyzeLanes accumulated stress", trial)
		}
	}
}

// TestStressSimResetAfterApplyVec checks Reset clears vector-accumulated
// stress and the simulator keeps working on both paths afterwards.
func TestStressSimResetAfterApplyVec(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.INV(a, "inv")
	sim := NewStressSim(n)
	sim.ApplyVec([]uint64{0}, 64, 5) // all 64 lanes at "0": full stress
	if sim.TotalTime() != 320 || sim.Transistors()[0].ZeroProb() != 1 {
		t.Fatalf("ApplyVec accumulation wrong: total=%d zp=%v",
			sim.TotalTime(), sim.Transistors()[0].ZeroProb())
	}
	sim.Reset()
	if sim.TotalTime() != 0 || sim.Transistors()[0].ZeroProb() != 0 {
		t.Fatal("Reset did not clear vector-applied stress")
	}
	sim.ApplyVec([]uint64{^uint64(0)}, 32, 2) // 32 lanes at "1": relax only
	sim.Apply([]bool{false}, 4)               // scalar still works after Reset
	if sim.TotalTime() != 68 {
		t.Errorf("TotalTime = %d, want 68", sim.TotalTime())
	}
	if got, want := sim.Transistors()[0].ZeroProb(), float64(4)/68; got != want {
		t.Errorf("ZeroProb = %v, want %v", got, want)
	}
}

// TestApplyVecEdgeCases covers dt=0, bad lane counts and bad buffer
// lengths.
func TestApplyVecEdgeCases(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.INV(a, "inv")
	sim := NewStressSim(n)
	sim.ApplyVec([]uint64{0}, 64, 0) // zero dt is a no-op
	if sim.TotalTime() != 0 {
		t.Error("zero-dt ApplyVec must not accumulate")
	}
	for _, f := range []func(){
		func() { sim.ApplyVec([]uint64{0}, 0, 1) },      // no lanes
		func() { sim.ApplyVec([]uint64{0}, 65, 1) },     // too many lanes
		func() { sim.ApplyVec(nil, 1, 1) },              // wrong input count
		func() { sim.LevelsInto([]uint64{0}, nil) },     // wrong levels length
		func() { PackBools(make([][]bool, 65), 0) },     // too many vectors
		func() { PackBools([][]bool{{true, true}}, 1) }, // lane length mismatch
		func() { n.Compile().EvalVecInto([]uint64{0}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
