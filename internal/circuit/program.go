package circuit

import "fmt"

// opCode is the compiled form of a gate Kind. Const gates split into two
// codes so the evaluator never consults Gate.Const, and every other code
// maps 1:1 onto a bitwise expression over 64-lane words.
type opCode uint8

const (
	opInput opCode = iota
	opConst0
	opConst1
	opINV
	opBUF
	opNAND2
	opNOR2
	opAND2
	opOR2
	opXOR2
	opXNOR2
	opMUX2
	opXOR3
)

// vecOp is one gate of a compiled netlist: an op code, up to three input
// signal indices (a doubles as the primary-input index for opInput) and
// the driven signal index.
type vecOp struct {
	code    opCode
	a, b, c int32
	out     int32
}

// Program is a netlist compiled into a flat topological op array for
// bit-parallel evaluation: every signal holds a 64-bit word whose bit l
// is the signal's value in lane l, so one pass over the ops evaluates 64
// independent input vectors with bitwise instructions.
//
// A Program is immutable and safe for concurrent use with per-caller
// value buffers. Compile after the netlist is fully built; gates added
// later are not reflected.
type Program struct {
	ops       []vecOp
	numInputs int
	numSignal int
}

// Compile flattens the netlist into a vector-evaluation program.
func (n *Netlist) Compile() *Program {
	p := &Program{
		ops:       make([]vecOp, 0, len(n.gates)),
		numInputs: len(n.inputs),
		numSignal: len(n.drivers),
	}
	inIdx := int32(0)
	for _, g := range n.gates {
		op := vecOp{out: int32(g.Out)}
		switch g.Kind {
		case KindInput:
			op.code = opInput
			op.a = inIdx
			inIdx++
		case KindConst:
			if g.Const {
				op.code = opConst1
			} else {
				op.code = opConst0
			}
		case KindINV:
			op.code, op.a = opINV, int32(g.In[0])
		case KindBUF:
			op.code, op.a = opBUF, int32(g.In[0])
		case KindNAND2:
			op.code, op.a, op.b = opNAND2, int32(g.In[0]), int32(g.In[1])
		case KindNOR2:
			op.code, op.a, op.b = opNOR2, int32(g.In[0]), int32(g.In[1])
		case KindAND2:
			op.code, op.a, op.b = opAND2, int32(g.In[0]), int32(g.In[1])
		case KindOR2:
			op.code, op.a, op.b = opOR2, int32(g.In[0]), int32(g.In[1])
		case KindXOR2:
			op.code, op.a, op.b = opXOR2, int32(g.In[0]), int32(g.In[1])
		case KindXNOR2:
			op.code, op.a, op.b = opXNOR2, int32(g.In[0]), int32(g.In[1])
		case KindMUX2:
			op.code, op.a, op.b, op.c = opMUX2, int32(g.In[0]), int32(g.In[1]), int32(g.In[2])
		case KindXOR3:
			op.code, op.a, op.b, op.c = opXOR3, int32(g.In[0]), int32(g.In[1]), int32(g.In[2])
		default:
			panic(fmt.Sprintf("circuit: cannot compile gate kind %v", g.Kind))
		}
		p.ops = append(p.ops, op)
	}
	return p
}

// NumInputs returns the number of primary inputs the program expects.
func (p *Program) NumInputs() int { return p.numInputs }

// NumSignals returns the number of signal words EvalVecInto fills.
func (p *Program) NumSignals() int { return p.numSignal }

// EvalVec evaluates up to 64 input vectors in one pass. inputs holds one
// word per primary input; bit l of each word is that input's value in
// lane l. The returned slice holds one word per signal. Lanes beyond the
// ones the caller packed compute garbage and must be masked off by the
// consumer.
func (p *Program) EvalVec(inputs []uint64) []uint64 {
	vals := make([]uint64, p.numSignal)
	p.EvalVecInto(inputs, vals)
	return vals
}

// EvalVecInto is EvalVec reusing a caller-provided word slice of length
// NumSignals, avoiding per-call allocation in stress loops.
func (p *Program) EvalVecInto(inputs []uint64, vals []uint64) {
	if len(inputs) != p.numInputs {
		panic(fmt.Sprintf("circuit: EvalVec got %d input words, want %d", len(inputs), p.numInputs))
	}
	if len(vals) != p.numSignal {
		panic("circuit: EvalVecInto value slice has wrong length")
	}
	for i := range p.ops {
		op := &p.ops[i]
		var v uint64
		switch op.code {
		case opInput:
			v = inputs[op.a]
		case opConst0:
			v = 0
		case opConst1:
			v = ^uint64(0)
		case opINV:
			v = ^vals[op.a]
		case opBUF:
			v = vals[op.a]
		case opNAND2:
			v = ^(vals[op.a] & vals[op.b])
		case opNOR2:
			v = ^(vals[op.a] | vals[op.b])
		case opAND2:
			v = vals[op.a] & vals[op.b]
		case opOR2:
			v = vals[op.a] | vals[op.b]
		case opXOR2:
			v = vals[op.a] ^ vals[op.b]
		case opXNOR2:
			v = ^(vals[op.a] ^ vals[op.b])
		case opMUX2:
			sel := vals[op.a]
			v = (^sel & vals[op.b]) | (sel & vals[op.c])
		case opXOR3:
			v = vals[op.a] ^ vals[op.b] ^ vals[op.c]
		}
		vals[op.out] = v
	}
}

// PackBools packs per-lane scalar input vectors into the word layout
// EvalVec consumes: word i holds input i of every lane, bit l coming
// from vectors[l][i]. At most 64 vectors fit one pack.
func PackBools(vectors [][]bool, numInputs int) []uint64 {
	if len(vectors) > 64 {
		panic("circuit: more than 64 lanes")
	}
	words := make([]uint64, numInputs)
	for l, vec := range vectors {
		if len(vec) != numInputs {
			panic(fmt.Sprintf("circuit: lane %d has %d inputs, want %d", l, len(vec), numInputs))
		}
		for i, b := range vec {
			if b {
				words[i] |= 1 << uint(l)
			}
		}
	}
	return words
}
