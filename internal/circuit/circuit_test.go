package circuit

import (
	"testing"
	"testing/quick"
)

// buildFullAdder wires a 1-bit full adder out of basic gates:
// sum = a⊕b⊕cin, cout = ab + cin(a⊕b).
func buildFullAdder() (*Netlist, []Signal, Signal, Signal) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	cin := n.Input("cin")
	axb := n.XOR2(a, b, "axb")
	sum := n.XOR2(axb, cin, "sum")
	ab := n.AND2(a, b, "ab")
	pc := n.AND2(axb, cin, "pc")
	cout := n.OR2(ab, pc, "cout")
	n.MarkOutput(sum)
	n.MarkOutput(cout)
	return n, []Signal{a, b, cin}, sum, cout
}

func TestFullAdderTruthTable(t *testing.T) {
	n, _, sum, cout := buildFullAdder()
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		vals := n.Eval(in)
		ones := 0
		for _, x := range in {
			if x {
				ones++
			}
		}
		if got, want := vals[sum], ones%2 == 1; got != want {
			t.Errorf("v=%d sum=%v want %v", v, got, want)
		}
		if got, want := vals[cout], ones >= 2; got != want {
			t.Errorf("v=%d cout=%v want %v", v, got, want)
		}
	}
}

func TestGateTruthTables(t *testing.T) {
	type gateCase struct {
		name  string
		build func(n *Netlist, in []Signal) Signal
		arity int
		fn    func(in []bool) bool
	}
	cases := []gateCase{
		{"inv", func(n *Netlist, in []Signal) Signal { return n.INV(in[0], "g") }, 1,
			func(in []bool) bool { return !in[0] }},
		{"buf", func(n *Netlist, in []Signal) Signal { return n.BUF(in[0], "g") }, 1,
			func(in []bool) bool { return in[0] }},
		{"nand2", func(n *Netlist, in []Signal) Signal { return n.NAND2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return !(in[0] && in[1]) }},
		{"nor2", func(n *Netlist, in []Signal) Signal { return n.NOR2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return !(in[0] || in[1]) }},
		{"and2", func(n *Netlist, in []Signal) Signal { return n.AND2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return in[0] && in[1] }},
		{"or2", func(n *Netlist, in []Signal) Signal { return n.OR2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return in[0] || in[1] }},
		{"xor2", func(n *Netlist, in []Signal) Signal { return n.XOR2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return in[0] != in[1] }},
		{"xnor2", func(n *Netlist, in []Signal) Signal { return n.XNOR2(in[0], in[1], "g") }, 2,
			func(in []bool) bool { return in[0] == in[1] }},
		{"mux2", func(n *Netlist, in []Signal) Signal { return n.MUX2(in[0], in[1], in[2], "g") }, 3,
			func(in []bool) bool {
				if in[0] {
					return in[2]
				}
				return in[1]
			}},
		{"xor3", func(n *Netlist, in []Signal) Signal { return n.XOR3(in[0], in[1], in[2], "g") }, 3,
			func(in []bool) bool { return in[0] != in[1] != in[2] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New()
			var ins []Signal
			for i := 0; i < tc.arity; i++ {
				ins = append(ins, n.Input("i"))
			}
			out := tc.build(n, ins)
			for v := 0; v < 1<<tc.arity; v++ {
				in := Uint64ToBits(uint64(v), tc.arity)
				vals := n.Eval(in)
				if got, want := vals[out], tc.fn(in); got != want {
					t.Errorf("inputs %v: got %v, want %v", in, got, want)
				}
			}
		})
	}
}

func TestConstSignals(t *testing.T) {
	n := New()
	one := n.Const(true, "one")
	zero := n.Const(false, "zero")
	out := n.AND2(one, zero, "and")
	vals := n.Eval(nil)
	if vals[one] != true || vals[zero] != false || vals[out] != false {
		t.Error("constants not propagated")
	}
}

func TestFanoutTracking(t *testing.T) {
	n := New()
	a := n.Input("a")
	n.INV(a, "x")
	n.INV(a, "y")
	b := n.BUF(a, "z")
	if got := n.Fanout(a); got != 3 {
		t.Errorf("Fanout(a) = %d, want 3", got)
	}
	if got := n.Fanout(b); got != 0 {
		t.Errorf("Fanout(b) = %d, want 0", got)
	}
}

func TestAutoWiden(t *testing.T) {
	n := New()
	a := n.Input("a")
	hub := n.INV(a, "hub")
	for i := 0; i < 4; i++ {
		n.INV(hub, "leaf")
	}
	widened := n.AutoWiden(4)
	if widened != 1 {
		t.Fatalf("AutoWiden widened %d gates, want 1", widened)
	}
	if !n.Gate(hub).Wide {
		t.Error("hub gate should be wide")
	}
	// Inputs never widen even with high fanout.
	n2 := New()
	a2 := n2.Input("a")
	for i := 0; i < 8; i++ {
		n2.INV(a2, "leaf")
	}
	if n2.AutoWiden(4) != 0 {
		t.Error("inputs must not be widened")
	}
}

func TestSetWideAndMarkOutput(t *testing.T) {
	n := New()
	a := n.Input("a")
	x := n.INV(a, "x")
	n.SetWide(x, true)
	if !n.Gate(x).Wide {
		t.Error("SetWide did not stick")
	}
	n.MarkOutput(x)
	if len(n.Outputs()) != 1 || n.Outputs()[0] != x {
		t.Error("MarkOutput did not record the signal")
	}
	vals := n.Eval([]bool{true})
	outs := n.OutputValues(vals)
	if len(outs) != 1 || outs[0] != false {
		t.Error("OutputValues mismatch")
	}
}

func TestEvalPanics(t *testing.T) {
	n := New()
	n.Input("a")
	for _, f := range []func(){
		func() { n.Eval(nil) },                    // wrong input count
		func() { n.EvalInto([]bool{true}, nil) },  // wrong buffer
		func() { n.INV(Signal(99), "bad") },       // unknown signal
		func() { n.addGate(KindNAND2, "bad", 0) }, // wrong arity
		func() { n.MarkOutput(Signal(-1)) },       // bad signal
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindNAND2.String() != "nand2" {
		t.Errorf("KindNAND2 = %q", KindNAND2.String())
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return BitsToUint64(Uint64ToBits(v, 64)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("BitsToUint64 with >64 bits should panic")
		}
	}()
	BitsToUint64(make([]bool, 65))
}

func TestEvalIntoMatchesEval(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	buf := make([]bool, n.NumSignals())
	f := func(v uint8) bool {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		n.EvalInto(in, buf)
		ref := n.Eval(in)
		for i := range ref {
			if buf[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
