package circuit

import (
	"math"
	"testing"
)

// TestCriticalPathChain checks depth and narrow counting on a hand-built
// inverter chain with a short side branch.
func TestCriticalPathChain(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	x := n.INV(a, "x1")
	x = n.INV(x, "x2")
	x = n.INV(x, "x3")
	wide := n.INV(x, "x4w")
	n.SetWide(wide, true)
	side := n.AND2(a, b, "side") // depth 1, off the critical path
	n.MarkOutput(n.OR2(wide, side, "out"))

	path := n.CriticalPath()
	if path.Depth != 5 {
		t.Fatalf("depth = %d, want 5 (inv chain + wide inv + or)", path.Depth)
	}
	// x1..x3 and the OR are narrow; x4 is wide.
	if path.Narrow != 4 {
		t.Fatalf("narrow = %d, want 4", path.Narrow)
	}
	if f := path.NarrowFraction(); math.Abs(f-0.8) > 1e-12 {
		t.Fatalf("narrow fraction = %g, want 0.8", f)
	}
}

// TestCriticalPathInputsOnly checks the degenerate netlists: inputs and
// constants alone have no path.
func TestCriticalPathInputsOnly(t *testing.T) {
	n := New()
	n.Input("a")
	n.Const(true, "one")
	if path := n.CriticalPath(); path.Depth != 0 || path.Narrow != 0 {
		t.Fatalf("gateless netlist has path %+v", path)
	}
	if f := (PathStats{}).NarrowFraction(); f != 0 {
		t.Fatalf("empty path narrow fraction = %g", f)
	}
}

// TestDelayModelZeroSusceptible checks the all-wide path degenerates to
// a zero response instead of dividing by zero.
func TestDelayModelZeroSusceptible(t *testing.T) {
	m := NewDelayModel(PathStats{Depth: 4, Narrow: 0}, 0.1, 0.2)
	if !m.Valid() {
		t.Fatal("zero-response model not valid")
	}
	if g := m.Guardband(0.1); g != 0 {
		t.Fatalf("all-wide path guardband = %g", g)
	}
}

// TestDelayModelMonotone sweeps the response: strictly increasing up to
// the clamp, anchored at the calibration point.
func TestDelayModelMonotone(t *testing.T) {
	m := NewDelayModel(PathStats{Depth: 10, Narrow: 7}, 0.1, 0.2)
	if g := m.Guardband(0.1); math.Abs(g-0.2) > 1e-12 {
		t.Fatalf("anchor guardband = %g, want 0.2", g)
	}
	prev := -1.0
	for shift := 0.0; shift <= 0.2; shift += 0.005 {
		g := m.Guardband(shift)
		if g <= prev && shift <= 0.2 {
			t.Fatalf("guardband not increasing at shift %g: %g <= %g", shift, g, prev)
		}
		prev = g
	}
	if (DelayModel{}).Valid() {
		t.Fatal("zero-value model must be invalid")
	}
}
