// Package circuit provides a gate-level combinational netlist simulator
// with CMOS-aware stress accounting: for every gate it knows which PMOS
// transistors its static-CMOS implementation contains and which logic
// signal each PMOS gate terminal observes. Driving the netlist with input
// vectors therefore yields, per transistor, the zero-signal probability
// that NBTI degradation depends on (paper §1.1, §3.1, §4.3).
//
// Netlists are built through a builder API (Input, INV, NAND2, ...) that
// creates gates in topological order, then evaluated combinationally with
// Eval. The package is purely structural — no timing — because the
// paper's combinational results only need signal probabilities plus a
// narrow/wide width class per transistor.
package circuit

import "fmt"

// Signal identifies a node (wire) in a netlist.
type Signal int

// Kind enumerates the supported gate types.
type Kind int

// Supported gate kinds. Composite kinds (AND2, OR2, XOR2, XNOR2, MUX2)
// model their standard static-CMOS implementations, including the PMOS
// transistors of internal inverters.
const (
	KindInput Kind = iota
	KindConst
	KindINV
	KindBUF
	KindNAND2
	KindNOR2
	KindAND2
	KindOR2
	KindXOR2
	KindXNOR2
	KindMUX2 // In[0]=select, In[1]=when select 0, In[2]=when select 1
	KindXOR3 // monolithic three-input XOR cell (sum stage of fast adders)
)

var kindNames = map[Kind]string{
	KindInput: "input", KindConst: "const", KindINV: "inv", KindBUF: "buf",
	KindNAND2: "nand2", KindNOR2: "nor2", KindAND2: "and2", KindOR2: "or2",
	KindXOR2: "xor2", KindXNOR2: "xnor2", KindMUX2: "mux2", KindXOR3: "xor3",
}

// String returns the lower-case conventional name of the gate kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// arity returns the number of inputs a gate kind takes.
func (k Kind) arity() int {
	switch k {
	case KindInput, KindConst:
		return 0
	case KindINV, KindBUF:
		return 1
	case KindMUX2, KindXOR3:
		return 3
	default:
		return 2
	}
}

// Gate is one netlist element. Out is the signal the gate drives.
type Gate struct {
	Kind  Kind
	In    []Signal
	Out   Signal
	Name  string
	Wide  bool // width class of the gate's PMOS transistors
	Const bool // for KindConst: the driven value
}

// Netlist is a combinational circuit under construction or evaluation.
// Gates are stored in topological order by construction: a gate can only
// reference signals that already exist.
type Netlist struct {
	gates   []Gate
	drivers []int // signal -> index of driving gate
	inputs  []Signal
	outputs []Signal
	fanout  []int // signal -> number of gate inputs it feeds
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

// NumSignals returns the number of nodes in the netlist.
func (n *Netlist) NumSignals() int { return len(n.drivers) }

// NumGates returns the number of gates (inputs and constants included).
func (n *Netlist) NumGates() int { return len(n.gates) }

// Inputs returns the primary input signals in creation order.
func (n *Netlist) Inputs() []Signal { return n.inputs }

// Outputs returns the signals marked as primary outputs.
func (n *Netlist) Outputs() []Signal { return n.outputs }

// Gate returns the gate driving signal s.
func (n *Netlist) Gate(s Signal) Gate { return n.gates[n.drivers[s]] }

// Gates returns all gates in topological order.
func (n *Netlist) Gates() []Gate { return n.gates }

// Fanout returns how many gate inputs signal s feeds.
func (n *Netlist) Fanout(s Signal) int { return n.fanout[s] }

func (n *Netlist) newSignal(g Gate) Signal {
	s := Signal(len(n.drivers))
	g.Out = s
	n.gates = append(n.gates, g)
	n.drivers = append(n.drivers, len(n.gates)-1)
	n.fanout = append(n.fanout, 0)
	return s
}

func (n *Netlist) checkSignals(ss ...Signal) {
	for _, s := range ss {
		if s < 0 || int(s) >= len(n.drivers) {
			panic(fmt.Sprintf("circuit: signal %d does not exist", s))
		}
	}
}

// Input creates a primary input.
func (n *Netlist) Input(name string) Signal {
	s := n.newSignal(Gate{Kind: KindInput, Name: name})
	n.inputs = append(n.inputs, s)
	return s
}

// Const creates a signal tied to a constant value.
func (n *Netlist) Const(v bool, name string) Signal {
	return n.newSignal(Gate{Kind: KindConst, Name: name, Const: v})
}

func (n *Netlist) addGate(k Kind, name string, in ...Signal) Signal {
	if len(in) != k.arity() {
		panic(fmt.Sprintf("circuit: %v takes %d inputs, got %d", k, k.arity(), len(in)))
	}
	n.checkSignals(in...)
	for _, s := range in {
		n.fanout[s]++
	}
	ins := make([]Signal, len(in))
	copy(ins, in)
	return n.newSignal(Gate{Kind: k, In: ins, Name: name})
}

// INV adds an inverter.
func (n *Netlist) INV(a Signal, name string) Signal { return n.addGate(KindINV, name, a) }

// BUF adds a buffer (two cascaded inverters).
func (n *Netlist) BUF(a Signal, name string) Signal { return n.addGate(KindBUF, name, a) }

// NAND2 adds a 2-input NAND.
func (n *Netlist) NAND2(a, b Signal, name string) Signal { return n.addGate(KindNAND2, name, a, b) }

// NOR2 adds a 2-input NOR.
func (n *Netlist) NOR2(a, b Signal, name string) Signal { return n.addGate(KindNOR2, name, a, b) }

// AND2 adds a 2-input AND (NAND followed by an inverter).
func (n *Netlist) AND2(a, b Signal, name string) Signal { return n.addGate(KindAND2, name, a, b) }

// OR2 adds a 2-input OR (NOR followed by an inverter).
func (n *Netlist) OR2(a, b Signal, name string) Signal { return n.addGate(KindOR2, name, a, b) }

// XOR2 adds a 2-input XOR.
func (n *Netlist) XOR2(a, b Signal, name string) Signal { return n.addGate(KindXOR2, name, a, b) }

// XNOR2 adds a 2-input XNOR.
func (n *Netlist) XNOR2(a, b Signal, name string) Signal { return n.addGate(KindXNOR2, name, a, b) }

// MUX2 adds a 2-way multiplexer: out = sel ? b : a.
func (n *Netlist) MUX2(sel, a, b Signal, name string) Signal {
	return n.addGate(KindMUX2, name, sel, a, b)
}

// XOR3 adds a monolithic 3-input XOR cell. Fast adders use compound XOR3
// cells for the sum stage so the intermediate a⊕b never appears on a
// wire; its PMOS transistors observe only the inputs and their local
// complements.
func (n *Netlist) XOR3(a, b, c Signal, name string) Signal {
	return n.addGate(KindXOR3, name, a, b, c)
}

// MarkOutput declares s a primary output.
func (n *Netlist) MarkOutput(s Signal) {
	n.checkSignals(s)
	n.outputs = append(n.outputs, s)
}

// SetWide marks the gate driving s as using wide PMOS transistors.
// Wide transistors resist NBTI (paper §2.1 "Geometry", §4.3); builders
// typically widen high-fanout gates.
func (n *Netlist) SetWide(s Signal, wide bool) {
	n.checkSignals(s)
	n.gates[n.drivers[s]].Wide = wide
}

// AutoWiden marks every gate whose output fanout is at least minFanout as
// wide. It returns the number of gates widened. Call after construction.
func (n *Netlist) AutoWiden(minFanout int) int {
	count := 0
	for i := range n.gates {
		g := &n.gates[i]
		if g.Kind == KindInput || g.Kind == KindConst {
			continue
		}
		if n.fanout[g.Out] >= minFanout {
			if !g.Wide {
				g.Wide = true
				count++
			}
		}
	}
	return count
}

// Eval evaluates the netlist for the given primary input assignment and
// returns the value of every signal. The input slice must match
// len(Inputs()).
func (n *Netlist) Eval(inputs []bool) []bool {
	if len(inputs) != len(n.inputs) {
		panic(fmt.Sprintf("circuit: Eval got %d inputs, want %d", len(inputs), len(n.inputs)))
	}
	vals := make([]bool, len(n.drivers))
	n.EvalInto(inputs, vals)
	return vals
}

// EvalInto is Eval reusing a caller-provided value slice of length
// NumSignals, avoiding per-vector allocation in stress loops.
func (n *Netlist) EvalInto(inputs []bool, vals []bool) {
	if len(vals) != len(n.drivers) {
		panic("circuit: EvalInto value slice has wrong length")
	}
	inIdx := 0
	for gi := range n.gates {
		g := &n.gates[gi]
		var v bool
		switch g.Kind {
		case KindInput:
			v = inputs[inIdx]
			inIdx++
		case KindConst:
			v = g.Const
		case KindINV:
			v = !vals[g.In[0]]
		case KindBUF:
			v = vals[g.In[0]]
		case KindNAND2:
			v = !(vals[g.In[0]] && vals[g.In[1]])
		case KindNOR2:
			v = !(vals[g.In[0]] || vals[g.In[1]])
		case KindAND2:
			v = vals[g.In[0]] && vals[g.In[1]]
		case KindOR2:
			v = vals[g.In[0]] || vals[g.In[1]]
		case KindXOR2:
			v = vals[g.In[0]] != vals[g.In[1]]
		case KindXNOR2:
			v = vals[g.In[0]] == vals[g.In[1]]
		case KindMUX2:
			if vals[g.In[0]] {
				v = vals[g.In[2]]
			} else {
				v = vals[g.In[1]]
			}
		case KindXOR3:
			v = vals[g.In[0]] != vals[g.In[1]] != vals[g.In[2]]
		default:
			panic(fmt.Sprintf("circuit: unknown gate kind %v", g.Kind))
		}
		vals[g.Out] = v
	}
}

// OutputValues extracts the primary output values from a full value
// assignment produced by Eval.
func (n *Netlist) OutputValues(vals []bool) []bool {
	out := make([]bool, len(n.outputs))
	for i, s := range n.outputs {
		out[i] = vals[s]
	}
	return out
}
