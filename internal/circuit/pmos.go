package circuit

import (
	"fmt"

	"penelope/internal/nbti"
)

// tapKind says where inside a gate's CMOS implementation a PMOS gate
// terminal is connected.
type tapKind int

const (
	tapIn     tapKind = iota // PMOS gate sees input pin Pin directly
	tapInInv                 // PMOS gate sees the complement of input pin Pin
	tapOutInv                // PMOS gate sees the complement of the gate output
)

// tap describes one PMOS transistor of a gate template.
type tap struct {
	Kind tapKind
	Pin  int
}

// pmosTemplates maps each gate kind to the PMOS transistors of its
// standard static-CMOS implementation and the signal each one observes:
//
//	INV    — one PMOS on the input.
//	BUF    — inverter pair: PMOS on input and on the inverted input.
//	NAND2  — two parallel PMOS, one per input.
//	NOR2   — two series PMOS, one per input.
//	AND2   — NAND2 plus output inverter whose PMOS sees the NAND output,
//	         i.e. the complement of the AND output. OR2 likewise from NOR2.
//	XOR2   — complementary pass/static implementation with local input
//	         inverters: PMOS on both inputs and both complements. XNOR2
//	         identical (the paper's XNOR in read/write paths, §3).
//	MUX2   — transmission-gate mux with select inverter: PMOS on select,
//	         its complement, and both data inputs.
var pmosTemplates = map[Kind][]tap{
	KindINV:   {{tapIn, 0}},
	KindBUF:   {{tapIn, 0}, {tapInInv, 0}},
	KindNAND2: {{tapIn, 0}, {tapIn, 1}},
	KindNOR2:  {{tapIn, 0}, {tapIn, 1}},
	KindAND2:  {{tapIn, 0}, {tapIn, 1}, {tapOutInv, 0}},
	KindOR2:   {{tapIn, 0}, {tapIn, 1}, {tapOutInv, 0}},
	KindXOR2:  {{tapIn, 0}, {tapIn, 1}, {tapInInv, 0}, {tapInInv, 1}},
	KindXNOR2: {{tapIn, 0}, {tapIn, 1}, {tapInInv, 0}, {tapInInv, 1}},
	KindMUX2:  {{tapIn, 0}, {tapInInv, 0}, {tapIn, 1}, {tapIn, 2}},
	KindXOR3:  {{tapIn, 0}, {tapIn, 1}, {tapIn, 2}, {tapInInv, 0}, {tapInInv, 1}, {tapInInv, 2}},
}

// Transistor identifies one PMOS device in an elaborated netlist and
// carries its accumulated stress statistics.
type Transistor struct {
	GateIndex int    // index into Netlist.Gates()
	GateName  string // name of the owning gate
	Tap       int    // index within the gate's PMOS template
	Wide      bool   // width class, inherited from the gate

	zeroTime  uint64 // time observed at logic "0" (under stress)
	totalTime uint64
}

// ZeroProb returns the fraction of observed time this PMOS saw a "0" at
// its gate — its zero-signal probability. Returns 0 before any
// observation (fresh transistor, no stress).
func (t *Transistor) ZeroProb() float64 {
	if t.totalTime == 0 {
		return 0
	}
	return float64(t.zeroTime) / float64(t.totalTime)
}

// StressSim elaborates a netlist into its PMOS transistors and
// accumulates per-transistor stress as input vectors are applied.
type StressSim struct {
	netlist     *Netlist
	transistors []Transistor
	vals        []bool // scratch evaluation buffer
}

// NewStressSim returns a stress simulator for the netlist. Input and
// constant pseudo-gates contribute no transistors.
func NewStressSim(n *Netlist) *StressSim {
	s := &StressSim{netlist: n, vals: make([]bool, n.NumSignals())}
	for gi, g := range n.Gates() {
		taps, ok := pmosTemplates[g.Kind]
		if !ok {
			continue
		}
		for ti := range taps {
			s.transistors = append(s.transistors, Transistor{
				GateIndex: gi, GateName: g.Name, Tap: ti, Wide: g.Wide,
			})
		}
	}
	return s
}

// Netlist returns the simulated netlist.
func (s *StressSim) Netlist() *Netlist { return s.netlist }

// NumTransistors returns the number of PMOS devices elaborated.
func (s *StressSim) NumTransistors() int { return len(s.transistors) }

// Transistors returns the transistor table. The slice is owned by the
// simulator; callers must not modify it.
func (s *StressSim) Transistors() []Transistor { return s.transistors }

// Apply evaluates the netlist under inputs and accounts dt time units of
// stress on every PMOS whose gate terminal observes a "0".
func (s *StressSim) Apply(inputs []bool, dt uint64) {
	if dt == 0 {
		return
	}
	s.netlist.EvalInto(inputs, s.vals)
	gates := s.netlist.Gates()
	for i := range s.transistors {
		tr := &s.transistors[i]
		g := &gates[tr.GateIndex]
		tp := pmosTemplates[g.Kind][tr.Tap]
		var level bool
		switch tp.Kind {
		case tapIn:
			level = s.vals[g.In[tp.Pin]]
		case tapInInv:
			level = !s.vals[g.In[tp.Pin]]
		case tapOutInv:
			level = !s.vals[g.Out]
		}
		tr.totalTime += dt
		if !level {
			tr.zeroTime += dt
		}
	}
}

// TotalTime returns the stress time applied so far (identical for all
// transistors).
func (s *StressSim) TotalTime() uint64 {
	if len(s.transistors) == 0 {
		return 0
	}
	return s.transistors[0].totalTime
}

// Reset clears all accumulated stress.
func (s *StressSim) Reset() {
	for i := range s.transistors {
		s.transistors[i].zeroTime = 0
		s.transistors[i].totalTime = 0
	}
}

// Report summarizes the stress state of a netlist for NBTI purposes.
type Report struct {
	Transistors int
	Narrow      int
	Wide        int

	// WorstNarrowZeroProb is the highest zero-signal probability of any
	// narrow transistor; WorstEffectiveBias folds width in via
	// nbti.Params.EffectiveBias and is what sets the guardband.
	WorstNarrowZeroProb float64
	WorstEffectiveBias  float64

	// NarrowFullyStressed is the fraction of ALL transistors that are
	// narrow and saw "0" 100% of the time — the Figure 4 metric.
	NarrowFullyStressed float64

	// Guardband is the cycle-time guardband the block requires given the
	// worst effective bias.
	Guardband float64
}

// Analyze computes the stress report under the given NBTI calibration.
func (s *StressSim) Analyze(p nbti.Params) Report {
	r := Report{Transistors: len(s.transistors)}
	fullyStressed := 0
	for i := range s.transistors {
		tr := &s.transistors[i]
		zp := tr.ZeroProb()
		if tr.Wide {
			r.Wide++
		} else {
			r.Narrow++
			if zp > r.WorstNarrowZeroProb {
				r.WorstNarrowZeroProb = zp
			}
			if zp >= 1 {
				fullyStressed++
			}
		}
		if eb := p.EffectiveBias(zp, tr.Wide); eb > r.WorstEffectiveBias {
			r.WorstEffectiveBias = eb
		}
	}
	if r.Transistors > 0 {
		r.NarrowFullyStressed = float64(fullyStressed) / float64(r.Transistors)
	}
	r.Guardband = p.Guardband(r.WorstEffectiveBias)
	return r
}

// String renders the report compactly for experiment logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"pmos=%d (narrow=%d wide=%d) worstNarrowZero=%.3f worstEffBias=%.3f narrow100%%=%.2f%% guardband=%.1f%%",
		r.Transistors, r.Narrow, r.Wide, r.WorstNarrowZeroProb,
		r.WorstEffectiveBias, r.NarrowFullyStressed*100, r.Guardband*100)
}

// Uint64ToBits converts the low n bits of v into a bool slice, LSB first.
func Uint64ToBits(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

// BitsToUint64 packs a bool slice (LSB first, at most 64 long) into a
// uint64.
func BitsToUint64(bits []bool) uint64 {
	if len(bits) > 64 {
		panic("circuit: more than 64 bits")
	}
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
