package circuit

import (
	"fmt"
	"math/bits"

	"penelope/internal/nbti"
)

// tapKind says where inside a gate's CMOS implementation a PMOS gate
// terminal is connected.
type tapKind int

const (
	tapIn     tapKind = iota // PMOS gate sees input pin Pin directly
	tapInInv                 // PMOS gate sees the complement of input pin Pin
	tapOutInv                // PMOS gate sees the complement of the gate output
)

// tap describes one PMOS transistor of a gate template.
type tap struct {
	Kind tapKind
	Pin  int
}

// pmosTemplates maps each gate kind to the PMOS transistors of its
// standard static-CMOS implementation and the signal each one observes:
//
//	INV    — one PMOS on the input.
//	BUF    — inverter pair: PMOS on input and on the inverted input.
//	NAND2  — two parallel PMOS, one per input.
//	NOR2   — two series PMOS, one per input.
//	AND2   — NAND2 plus output inverter whose PMOS sees the NAND output,
//	         i.e. the complement of the AND output. OR2 likewise from NOR2.
//	XOR2   — complementary pass/static implementation with local input
//	         inverters: PMOS on both inputs and both complements. XNOR2
//	         identical (the paper's XNOR in read/write paths, §3).
//	MUX2   — transmission-gate mux with select inverter: PMOS on select,
//	         its complement, and both data inputs.
var pmosTemplates = map[Kind][]tap{
	KindINV:   {{tapIn, 0}},
	KindBUF:   {{tapIn, 0}, {tapInInv, 0}},
	KindNAND2: {{tapIn, 0}, {tapIn, 1}},
	KindNOR2:  {{tapIn, 0}, {tapIn, 1}},
	KindAND2:  {{tapIn, 0}, {tapIn, 1}, {tapOutInv, 0}},
	KindOR2:   {{tapIn, 0}, {tapIn, 1}, {tapOutInv, 0}},
	KindXOR2:  {{tapIn, 0}, {tapIn, 1}, {tapInInv, 0}, {tapInInv, 1}},
	KindXNOR2: {{tapIn, 0}, {tapIn, 1}, {tapInInv, 0}, {tapInInv, 1}},
	KindMUX2:  {{tapIn, 0}, {tapInInv, 0}, {tapIn, 1}, {tapIn, 2}},
	KindXOR3:  {{tapIn, 0}, {tapIn, 1}, {tapIn, 2}, {tapInInv, 0}, {tapInInv, 1}, {tapInInv, 2}},
}

// Transistor identifies one PMOS device in an elaborated netlist and
// carries its accumulated stress statistics.
type Transistor struct {
	GateIndex int    // index into Netlist.Gates()
	GateName  string // name of the owning gate
	Tap       int    // index within the gate's PMOS template
	Wide      bool   // width class, inherited from the gate

	zeroTime  uint64 // time observed at logic "0" (under stress)
	totalTime uint64
}

// ZeroProb returns the fraction of observed time this PMOS saw a "0" at
// its gate — its zero-signal probability. Returns 0 before any
// observation (fresh transistor, no stress).
func (t *Transistor) ZeroProb() float64 {
	if t.totalTime == 0 {
		return 0
	}
	return float64(t.zeroTime) / float64(t.totalTime)
}

// tapSite is one entry of the compiled tap program: the signal a PMOS
// gate terminal observes and whether it sees its complement. Every tap
// template reduces to this form (tapIn → the input pin, tapInInv → the
// inverted input pin, tapOutInv → the inverted gate output), so Apply
// and ApplyVec walk a flat array with no map lookups or branches on tap
// kind.
type tapSite struct {
	sig    int32
	invert bool
}

// StressSim elaborates a netlist into its PMOS transistors and
// accumulates per-transistor stress as input vectors are applied.
type StressSim struct {
	netlist     *Netlist
	prog        *Program
	transistors []Transistor
	taps        []tapSite // compiled tap program, aligned with transistors
	vals        []bool    // scratch scalar evaluation buffer
	valsVec     []uint64  // scratch vector evaluation buffer
}

// NewStressSim returns a stress simulator for the netlist. Input and
// constant pseudo-gates contribute no transistors. The netlist is
// compiled once here: the tap table collapses into a flat
// (signal, invert) program and the gate array into a vector-evaluation
// program, so the per-Apply inner loops touch neither maps nor Gate
// structs.
func NewStressSim(n *Netlist) *StressSim {
	return NewStressSimCompiled(n, n.Compile())
}

// NewStressSimCompiled is NewStressSim reusing an already compiled
// program for the same netlist, for callers that construct many
// simulators over one circuit.
func NewStressSimCompiled(n *Netlist, prog *Program) *StressSim {
	if prog.NumSignals() != n.NumSignals() || prog.NumInputs() != len(n.Inputs()) {
		panic("circuit: program does not match netlist")
	}
	s := &StressSim{
		netlist: n,
		prog:    prog,
		vals:    make([]bool, n.NumSignals()),
		valsVec: make([]uint64, n.NumSignals()),
	}
	count := 0
	for _, g := range n.Gates() {
		count += len(pmosTemplates[g.Kind])
	}
	s.transistors = make([]Transistor, 0, count)
	s.taps = make([]tapSite, 0, count)
	for gi, g := range n.Gates() {
		taps, ok := pmosTemplates[g.Kind]
		if !ok {
			continue
		}
		for ti, tp := range taps {
			s.transistors = append(s.transistors, Transistor{
				GateIndex: gi, GateName: g.Name, Tap: ti, Wide: g.Wide,
			})
			switch tp.Kind {
			case tapIn:
				s.taps = append(s.taps, tapSite{sig: int32(g.In[tp.Pin])})
			case tapInInv:
				s.taps = append(s.taps, tapSite{sig: int32(g.In[tp.Pin]), invert: true})
			case tapOutInv:
				s.taps = append(s.taps, tapSite{sig: int32(g.Out), invert: true})
			}
		}
	}
	return s
}

// Netlist returns the simulated netlist.
func (s *StressSim) Netlist() *Netlist { return s.netlist }

// NumTransistors returns the number of PMOS devices elaborated.
func (s *StressSim) NumTransistors() int { return len(s.transistors) }

// Transistors returns the transistor table. The slice is owned by the
// simulator; callers must not modify it.
func (s *StressSim) Transistors() []Transistor { return s.transistors }

// Apply evaluates the netlist under inputs and accounts dt time units of
// stress on every PMOS whose gate terminal observes a "0". This is the
// scalar oracle path; ApplyVec is the 64-lane equivalent.
func (s *StressSim) Apply(inputs []bool, dt uint64) {
	if dt == 0 {
		return
	}
	s.netlist.EvalInto(inputs, s.vals)
	for i, tp := range s.taps {
		tr := &s.transistors[i]
		tr.totalTime += dt
		if s.vals[tp.sig] == tp.invert { // level is "0"
			tr.zeroTime += dt
		}
	}
}

// laneMask returns the mask selecting the low `lanes` lanes.
func laneMask(lanes int) uint64 {
	if lanes < 1 || lanes > 64 {
		panic(fmt.Sprintf("circuit: lane count %d out of range [1,64]", lanes))
	}
	return ^uint64(0) >> uint(64-lanes)
}

// ApplyVec evaluates up to 64 independent input vectors in one bitwise
// pass and accounts dt time units of stress per lane: each of the low
// `lanes` lanes is a distinct time slice, so a transistor accumulates
// dt·lanes of total time and dt per lane whose gate terminal observes a
// "0" (counted with bits.OnesCount64). The accumulated totals are
// exactly those of `lanes` scalar Apply calls with the same dt — stress
// accounting is an order-independent sum.
//
// inputs follows the Program.EvalVec layout: one word per primary input,
// bit l = the input's value in lane l. Garbage in lanes ≥ `lanes` is
// masked off.
func (s *StressSim) ApplyVec(inputs []uint64, lanes int, dt uint64) {
	if dt == 0 {
		return
	}
	mask := laneMask(lanes)
	total := dt * uint64(lanes)
	s.prog.EvalVecInto(inputs, s.valsVec)
	for i, tp := range s.taps {
		w := s.valsVec[tp.sig]
		if tp.invert {
			w = ^w
		}
		tr := &s.transistors[i]
		tr.totalTime += total
		tr.zeroTime += dt * uint64(bits.OnesCount64(^w&mask))
	}
}

// Levels evaluates up to 64 input vectors and returns, per transistor,
// the word of logic levels its gate terminal observes (bit l = level in
// lane l). Nothing is accumulated — Levels is the observation half of
// ApplyVec, letting callers account one evaluation against many
// different lane subsets (AnalyzeLanes) without re-evaluating.
func (s *StressSim) Levels(inputs []uint64) []uint64 {
	out := make([]uint64, len(s.taps))
	s.LevelsInto(inputs, out)
	return out
}

// LevelsInto is Levels filling a caller-provided slice of length
// NumTransistors.
func (s *StressSim) LevelsInto(inputs []uint64, out []uint64) {
	if len(out) != len(s.taps) {
		panic("circuit: LevelsInto slice has wrong length")
	}
	s.prog.EvalVecInto(inputs, s.valsVec)
	for i, tp := range s.taps {
		w := s.valsVec[tp.sig]
		if tp.invert {
			w = ^w
		}
		out[i] = w
	}
}

// TotalTime returns the stress time applied so far (identical for all
// transistors).
func (s *StressSim) TotalTime() uint64 {
	if len(s.transistors) == 0 {
		return 0
	}
	return s.transistors[0].totalTime
}

// Reset clears all accumulated stress.
func (s *StressSim) Reset() {
	for i := range s.transistors {
		s.transistors[i].zeroTime = 0
		s.transistors[i].totalTime = 0
	}
}

// Report summarizes the stress state of a netlist for NBTI purposes.
type Report struct {
	Transistors int
	Narrow      int
	Wide        int

	// WorstNarrowZeroProb is the highest zero-signal probability of any
	// narrow transistor; WorstEffectiveBias folds width in via
	// nbti.Params.EffectiveBias and is what sets the guardband.
	WorstNarrowZeroProb float64
	WorstEffectiveBias  float64

	// NarrowFullyStressed is the fraction of ALL transistors that are
	// narrow and saw "0" 100% of the time — the Figure 4 metric.
	NarrowFullyStressed float64

	// Guardband is the cycle-time guardband the block requires given the
	// worst effective bias.
	Guardband float64
}

// Analyze computes the stress report under the given NBTI calibration.
func (s *StressSim) Analyze(p nbti.Params) Report {
	return s.analyzeWith(p, func(i int) float64 { return s.transistors[i].ZeroProb() })
}

// AnalyzeLanes computes the stress report a round-robin application of
// the lanes selected by laneMask would produce, from level words
// captured with Levels. Each selected lane counts as one equal time
// slice, so a transistor's zero-signal probability is the fraction of
// selected lanes where it observes a "0" — bit-identical to Reset +
// one scalar Apply per selected lane + Analyze. The simulator's
// accumulated state is neither read nor modified, so concurrent
// AnalyzeLanes calls on one simulator are safe.
func (s *StressSim) AnalyzeLanes(words []uint64, laneMask uint64, p nbti.Params) Report {
	if len(words) != len(s.transistors) {
		panic("circuit: AnalyzeLanes words slice has wrong length")
	}
	lanes := bits.OnesCount64(laneMask)
	if lanes == 0 {
		// No observations: every transistor is fresh, matching ZeroProb.
		return s.analyzeWith(p, func(int) float64 { return 0 })
	}
	// A transistor's zero-signal probability and effective bias depend
	// only on its zero-lane count and width class, so the float division
	// and bias interpolation run lanes+1 times into lookup tables instead
	// of once per transistor; the loop body mirrors analyzeWith. The
	// fixed-size backing arrays keep the tables off the heap (lanes ≤ 64).
	var zpArr, ebNarrowArr, ebWideArr [65]float64
	zp, ebNarrow, ebWide := zpArr[:lanes+1], ebNarrowArr[:lanes+1], ebWideArr[:lanes+1]
	for c := 0; c <= lanes; c++ {
		zp[c] = float64(c) / float64(lanes)
		ebNarrow[c] = p.EffectiveBias(zp[c], false)
		ebWide[c] = p.EffectiveBias(zp[c], true)
	}
	r := Report{Transistors: len(s.transistors)}
	fullyStressed := 0
	for i := range s.transistors {
		c := bits.OnesCount64(^words[i] & laneMask)
		var eb float64
		if s.transistors[i].Wide {
			r.Wide++
			eb = ebWide[c]
		} else {
			r.Narrow++
			if zp[c] > r.WorstNarrowZeroProb {
				r.WorstNarrowZeroProb = zp[c]
			}
			if zp[c] >= 1 {
				fullyStressed++
			}
			eb = ebNarrow[c]
		}
		if eb > r.WorstEffectiveBias {
			r.WorstEffectiveBias = eb
		}
	}
	if r.Transistors > 0 {
		r.NarrowFullyStressed = float64(fullyStressed) / float64(r.Transistors)
	}
	r.Guardband = p.Guardband(r.WorstEffectiveBias)
	return r
}

// analyzeWith is the shared Analyze body, parameterized over where each
// transistor's zero-signal probability comes from.
func (s *StressSim) analyzeWith(p nbti.Params, zeroProb func(i int) float64) Report {
	r := Report{Transistors: len(s.transistors)}
	fullyStressed := 0
	for i := range s.transistors {
		tr := &s.transistors[i]
		zp := zeroProb(i)
		if tr.Wide {
			r.Wide++
		} else {
			r.Narrow++
			if zp > r.WorstNarrowZeroProb {
				r.WorstNarrowZeroProb = zp
			}
			if zp >= 1 {
				fullyStressed++
			}
		}
		if eb := p.EffectiveBias(zp, tr.Wide); eb > r.WorstEffectiveBias {
			r.WorstEffectiveBias = eb
		}
	}
	if r.Transistors > 0 {
		r.NarrowFullyStressed = float64(fullyStressed) / float64(r.Transistors)
	}
	r.Guardband = p.Guardband(r.WorstEffectiveBias)
	return r
}

// String renders the report compactly for experiment logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"pmos=%d (narrow=%d wide=%d) worstNarrowZero=%.3f worstEffBias=%.3f narrow100%%=%.2f%% guardband=%.1f%%",
		r.Transistors, r.Narrow, r.Wide, r.WorstNarrowZeroProb,
		r.WorstEffectiveBias, r.NarrowFullyStressed*100, r.Guardband*100)
}

// Uint64ToBits converts the low n bits of v into a bool slice, LSB first.
func Uint64ToBits(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

// BitsToUint64 packs a bool slice (LSB first, at most 64 long) into a
// uint64.
func BitsToUint64(bits []bool) uint64 {
	if len(bits) > 64 {
		panic("circuit: more than 64 bits")
	}
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
