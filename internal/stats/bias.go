package stats

import "math/bits"

// BitBias accumulates, per bit position, the time a stored value held a
// logic "0" versus a logic "1". This is the quantity NBTI degradation
// depends on: the zero-signal probability at the gate of the PMOS
// transistor driven by that bit (paper §1.1, §2.1).
//
// Callers report intervals: Observe(value, dt) states that value was held
// for dt cycles. ObserveFree(dt) states the tracked cell was unoccupied
// for dt cycles; free time is accounted separately so callers can compute
// bias over busy time only, or over total time with an assumed idle value.
// Internally the tracker counts the cycles each bit held "1" and walks
// whichever side of the value is sparser: the set bits for the
// workload's zero-biased data, the zero bits (with a subtractive dense
// credit) for ones-dense values like ISV-inverted repair contents. Every
// interval therefore costs at most width/2 counter updates, and zero
// time falls out exactly as total time minus one time. The counters are
// exact under uint64 modular arithmetic: a dense interval stores
// trueOnes-dt per zero bit and dt in the dense scalar, which the readers
// re-add, so wraparound cancels.
type BitBias struct {
	bits      int
	mask      uint64   // low `bits` set: the tracked positions
	oneBusy   []uint64 // cycles each bit held "1" while busy, minus denseBusy
	busyTime  uint64   // total busy cycles observed
	freeTime  uint64   // total free cycles observed
	oneFree   []uint64 // cycles each bit held "1" while free, minus denseFree
	denseBusy uint64   // busy cycles credited to every bit at read time
	denseFree uint64   // free cycles credited to every bit at read time
	intervals uint64   // number of Observe calls, for diagnostics
}

// NewBitBias returns a tracker for values of the given width in bits.
// Width must be in [1, 64].
func NewBitBias(bits int) *BitBias {
	if bits < 1 || bits > 64 {
		panic("stats: BitBias width must be in [1, 64]")
	}
	return &BitBias{
		bits:    bits,
		mask:    ^uint64(0) >> uint(64-bits),
		oneBusy: make([]uint64, bits),
		oneFree: make([]uint64, bits),
	}
}

// Bits returns the tracked width.
func (b *BitBias) Bits() int { return b.bits }

// addOnes credits dt to the one-time of every set bit of value, choosing
// the shorter walk: set bits directly when they are the minority, or the
// dense scalar plus a subtractive walk over the zero bits otherwise. It
// returns the dense credit (dt or 0) for the caller's scalar.
func addOnes(counts []uint64, value, mask, dt uint64, width int) (dense uint64) {
	v := value & mask
	if 2*bits.OnesCount64(v) <= width {
		for m := v; m != 0; m &= m - 1 {
			counts[bits.TrailingZeros64(m)] += dt
		}
		return 0
	}
	for m := ^v & mask; m != 0; m &= m - 1 {
		counts[bits.TrailingZeros64(m)] -= dt
	}
	return dt
}

// Observe records that value was held for dt cycles while busy.
func (b *BitBias) Observe(value uint64, dt uint64) {
	if dt == 0 {
		return
	}
	b.busyTime += dt
	b.intervals++
	b.denseBusy += addOnes(b.oneBusy, value, b.mask, dt, b.bits)
}

// ObserveFree records that the cell held value for dt cycles while the
// entry was logically free (released). The physical cell still stores
// something — typically stale data or an NBTI-repair value — and its bits
// degrade all the same, which is exactly what the ISV mechanism exploits.
func (b *BitBias) ObserveFree(value uint64, dt uint64) {
	if dt == 0 {
		return
	}
	b.freeTime += dt
	b.denseFree += addOnes(b.oneFree, value, b.mask, dt, b.bits)
}

// BusyTime returns the total busy cycles observed.
func (b *BitBias) BusyTime() uint64 { return b.busyTime }

// FreeTime returns the total free cycles observed.
func (b *BitBias) FreeTime() uint64 { return b.freeTime }

// TotalTime returns busy plus free cycles.
func (b *BitBias) TotalTime() uint64 { return b.busyTime + b.freeTime }

// ZeroBias returns, for bit i, the fraction of *total* observed time the
// bit held "0" (busy and free intervals combined). Returns 0.5 when no
// time has been observed, the neutral value for NBTI purposes.
func (b *BitBias) ZeroBias(i int) float64 {
	total := b.busyTime + b.freeTime
	if total == 0 {
		return 0.5
	}
	ones := b.oneBusy[i] + b.denseBusy + b.oneFree[i] + b.denseFree
	return float64(total-ones) / float64(total)
}

// BusyZeroBias returns the fraction of busy time bit i held "0", or 0.5
// if no busy time was observed.
func (b *BitBias) BusyZeroBias(i int) float64 {
	if b.busyTime == 0 {
		return 0.5
	}
	return float64(b.busyTime-b.oneBusy[i]-b.denseBusy) / float64(b.busyTime)
}

// Biases returns ZeroBias for every bit, index 0 = least significant.
func (b *BitBias) Biases() []float64 {
	return b.AppendBiases(make([]float64, 0, b.bits))
}

// AppendBiases appends ZeroBias for every bit to dst and returns the
// extended slice, letting report builders size one backing array up
// front instead of allocating per tracker.
func (b *BitBias) AppendBiases(dst []float64) []float64 {
	for i := 0; i < b.bits; i++ {
		dst = append(dst, b.ZeroBias(i))
	}
	return dst
}

// WorstImbalance returns the maximum over bits of |bias-0.5|·2, i.e. how
// far the worst bit is from perfect balance on a 0..1 scale, and the index
// of that bit. A memory cell is stressed by max(bias, 1-bias), so the
// imbalance is symmetric in zeros and ones.
func (b *BitBias) WorstImbalance() (imbalance float64, bit int) {
	for i := 0; i < b.bits; i++ {
		d := b.ZeroBias(i) - 0.5
		if d < 0 {
			d = -d
		}
		if d*2 > imbalance {
			imbalance = d * 2
			bit = i
		}
	}
	return imbalance, bit
}

// WorstCellBias returns the highest per-cell stress bias across bits:
// max over bits of max(zeroBias, 1-zeroBias). This is the bias that sets
// the guardband for the structure (paper §3.2: one of the two PMOS in the
// cell is always under stress; the worse-balanced one fails first).
func (b *BitBias) WorstCellBias() float64 {
	worst := 0.5
	for i := 0; i < b.bits; i++ {
		z := b.ZeroBias(i)
		cell := z
		if 1-z > cell {
			cell = 1 - z
		}
		if cell > worst {
			worst = cell
		}
	}
	return worst
}

// Merge adds the accumulated time of other into b. Both trackers must have
// the same width.
func (b *BitBias) Merge(other *BitBias) {
	if other.bits != b.bits {
		panic("stats: merging BitBias trackers of different widths")
	}
	b.busyTime += other.busyTime
	b.freeTime += other.freeTime
	b.denseBusy += other.denseBusy
	b.denseFree += other.denseFree
	b.intervals += other.intervals
	for i := 0; i < b.bits; i++ {
		b.oneBusy[i] += other.oneBusy[i]
		b.oneFree[i] += other.oneFree[i]
	}
}

// Reset clears all accumulated time.
func (b *BitBias) Reset() {
	b.busyTime, b.freeTime, b.intervals = 0, 0, 0
	b.denseBusy, b.denseFree = 0, 0
	for i := range b.oneBusy {
		b.oneBusy[i] = 0
		b.oneFree[i] = 0
	}
}
