package stats

import "math/bits"

// BitBias accumulates, per bit position, the time a stored value held a
// logic "0" versus a logic "1". This is the quantity NBTI degradation
// depends on: the zero-signal probability at the gate of the PMOS
// transistor driven by that bit (paper §1.1, §2.1).
//
// Callers report intervals: Observe(value, dt) states that value was held
// for dt cycles. ObserveFree(dt) states the tracked cell was unoccupied
// for dt cycles; free time is accounted separately so callers can compute
// bias over busy time only, or over total time with an assumed idle value.
type BitBias struct {
	bits      int
	mask      uint64   // low `bits` set: the tracked positions
	zeroBusy  []uint64 // cycles each bit held "0" while the entry was busy
	busyTime  uint64   // total busy cycles observed
	freeTime  uint64   // total free cycles observed
	zeroFree  []uint64 // cycles each bit held "0" while the entry was free
	intervals uint64   // number of Observe calls, for diagnostics
}

// NewBitBias returns a tracker for values of the given width in bits.
// Width must be in [1, 64].
func NewBitBias(bits int) *BitBias {
	if bits < 1 || bits > 64 {
		panic("stats: BitBias width must be in [1, 64]")
	}
	return &BitBias{
		bits:     bits,
		mask:     ^uint64(0) >> uint(64-bits),
		zeroBusy: make([]uint64, bits),
		zeroFree: make([]uint64, bits),
	}
}

// Bits returns the tracked width.
func (b *BitBias) Bits() int { return b.bits }

// addZeros credits dt to the counters of every zero bit of value,
// word-parallel: it walks only the set bits of ^value instead of testing
// all positions one by one.
func addZeros(counts []uint64, value, mask, dt uint64) {
	for m := ^value & mask; m != 0; m &= m - 1 {
		counts[bits.TrailingZeros64(m)] += dt
	}
}

// Observe records that value was held for dt cycles while busy.
func (b *BitBias) Observe(value uint64, dt uint64) {
	if dt == 0 {
		return
	}
	b.busyTime += dt
	b.intervals++
	addZeros(b.zeroBusy, value, b.mask, dt)
}

// ObserveFree records that the cell held value for dt cycles while the
// entry was logically free (released). The physical cell still stores
// something — typically stale data or an NBTI-repair value — and its bits
// degrade all the same, which is exactly what the ISV mechanism exploits.
func (b *BitBias) ObserveFree(value uint64, dt uint64) {
	if dt == 0 {
		return
	}
	b.freeTime += dt
	addZeros(b.zeroFree, value, b.mask, dt)
}

// BusyTime returns the total busy cycles observed.
func (b *BitBias) BusyTime() uint64 { return b.busyTime }

// FreeTime returns the total free cycles observed.
func (b *BitBias) FreeTime() uint64 { return b.freeTime }

// TotalTime returns busy plus free cycles.
func (b *BitBias) TotalTime() uint64 { return b.busyTime + b.freeTime }

// ZeroBias returns, for bit i, the fraction of *total* observed time the
// bit held "0" (busy and free intervals combined). Returns 0.5 when no
// time has been observed, the neutral value for NBTI purposes.
func (b *BitBias) ZeroBias(i int) float64 {
	total := b.busyTime + b.freeTime
	if total == 0 {
		return 0.5
	}
	return float64(b.zeroBusy[i]+b.zeroFree[i]) / float64(total)
}

// BusyZeroBias returns the fraction of busy time bit i held "0", or 0.5
// if no busy time was observed.
func (b *BitBias) BusyZeroBias(i int) float64 {
	if b.busyTime == 0 {
		return 0.5
	}
	return float64(b.zeroBusy[i]) / float64(b.busyTime)
}

// Biases returns ZeroBias for every bit, index 0 = least significant.
func (b *BitBias) Biases() []float64 {
	out := make([]float64, b.bits)
	for i := range out {
		out[i] = b.ZeroBias(i)
	}
	return out
}

// WorstImbalance returns the maximum over bits of |bias-0.5|·2, i.e. how
// far the worst bit is from perfect balance on a 0..1 scale, and the index
// of that bit. A memory cell is stressed by max(bias, 1-bias), so the
// imbalance is symmetric in zeros and ones.
func (b *BitBias) WorstImbalance() (imbalance float64, bit int) {
	for i := 0; i < b.bits; i++ {
		d := b.ZeroBias(i) - 0.5
		if d < 0 {
			d = -d
		}
		if d*2 > imbalance {
			imbalance = d * 2
			bit = i
		}
	}
	return imbalance, bit
}

// WorstCellBias returns the highest per-cell stress bias across bits:
// max over bits of max(zeroBias, 1-zeroBias). This is the bias that sets
// the guardband for the structure (paper §3.2: one of the two PMOS in the
// cell is always under stress; the worse-balanced one fails first).
func (b *BitBias) WorstCellBias() float64 {
	worst := 0.5
	for i := 0; i < b.bits; i++ {
		z := b.ZeroBias(i)
		cell := z
		if 1-z > cell {
			cell = 1 - z
		}
		if cell > worst {
			worst = cell
		}
	}
	return worst
}

// Merge adds the accumulated time of other into b. Both trackers must have
// the same width.
func (b *BitBias) Merge(other *BitBias) {
	if other.bits != b.bits {
		panic("stats: merging BitBias trackers of different widths")
	}
	b.busyTime += other.busyTime
	b.freeTime += other.freeTime
	b.intervals += other.intervals
	for i := 0; i < b.bits; i++ {
		b.zeroBusy[i] += other.zeroBusy[i]
		b.zeroFree[i] += other.zeroFree[i]
	}
}

// Reset clears all accumulated time.
func (b *BitBias) Reset() {
	b.busyTime, b.freeTime, b.intervals = 0, 0, 0
	for i := range b.zeroBusy {
		b.zeroBusy[i] = 0
		b.zeroFree[i] = 0
	}
}
