package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{1, 3}, 2},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.xs); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty slice should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {105, 5},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty slice should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean skipping non-positive = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean of empty slice should be 0")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(0.074); got != "7.4%" {
		t.Errorf("Ratio = %q, want 7.4%%", got)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "hits"}
	c.Inc()
	c.Add(3)
	if c.Count != 4 {
		t.Fatalf("Count = %d, want 4", c.Count)
	}
	if got := c.Fraction(8); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Fraction = %v, want 0.5", got)
	}
	if c.Fraction(0) != 0 {
		t.Error("Fraction with zero total should be 0")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	// Property: a percentile always lies within [Min, Max].
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		got := Percentile(xs, p)
		return got >= Min(xs)-1e-9 && got <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
