package stats

import (
	"testing"
	"testing/quick"
)

func TestUtilizationBasics(t *testing.T) {
	u := NewUtilization(2)
	u.Tick(100)
	u.Use(0, 30)
	u.Use(1, 10)
	if got := u.UnitUtilization(0); !almostEqual(got, 0.30, 1e-12) {
		t.Errorf("UnitUtilization(0) = %v, want 0.30", got)
	}
	if got := u.Average(); !almostEqual(got, 0.20, 1e-12) {
		t.Errorf("Average = %v, want 0.20", got)
	}
	if f, i := u.MaxUnit(); i != 0 || !almostEqual(f, 0.30, 1e-12) {
		t.Errorf("MaxUnit = %v,%d, want 0.30,0", f, i)
	}
	if f, i := u.MinUnit(); i != 1 || !almostEqual(f, 0.10, 1e-12) {
		t.Errorf("MinUnit = %v,%d, want 0.10,1", f, i)
	}
	if u.Units() != 2 || u.Total() != 100 {
		t.Error("Units/Total mismatch")
	}
}

func TestUtilizationAvailability(t *testing.T) {
	u := NewUtilization(1)
	if got := u.Availability(); got != 1 {
		t.Errorf("Availability with no requests = %v, want 1", got)
	}
	u.Tick(10)
	u.Use(0, 1)
	u.Use(0, 1)
	u.Use(0, 1)
	u.Deny()
	if got := u.Availability(); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("Availability = %v, want 0.75", got)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	u := NewUtilization(3)
	if u.Average() != 0 || u.UnitUtilization(1) != 0 {
		t.Error("utilization with no time should be 0")
	}
	if f, _ := u.MinUnit(); f != 0 {
		t.Error("MinUnit with no time should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewUtilization(0) did not panic")
		}
	}()
	NewUtilization(0)
}

func TestOccupancyBasics(t *testing.T) {
	o := NewOccupancy(4)
	o.Observe(4, 50)
	o.Observe(0, 50)
	if got := o.Average(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Average = %v, want 0.5", got)
	}
	if got := o.FreeFraction(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FreeFraction = %v, want 0.5", got)
	}
	if o.Peak() != 4 || o.Capacity() != 4 {
		t.Error("Peak/Capacity mismatch")
	}
}

func TestOccupancyBounds(t *testing.T) {
	o := NewOccupancy(2)
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Observe(%d) did not panic", bad)
				}
			}()
			o.Observe(bad, 1)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("NewOccupancy(0) did not panic")
		}
	}()
	NewOccupancy(0)
}

func TestOccupancyEmpty(t *testing.T) {
	o := NewOccupancy(8)
	if o.Average() != 0 {
		t.Error("Average with no time should be 0")
	}
	if o.FreeFraction() != 1 {
		t.Error("FreeFraction with no time should be 1")
	}
}

func TestOccupancyPropertyAverageBounded(t *testing.T) {
	f := func(fills []uint8, dts []uint8) bool {
		o := NewOccupancy(255)
		n := len(fills)
		if len(dts) < n {
			n = len(dts)
		}
		for i := 0; i < n; i++ {
			o.Observe(int(fills[i]), uint64(dts[i]))
		}
		a := o.Average()
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d, want 10", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("Bucket(%d) = %d, want 1", i, h.Bucket(i))
		}
	}
	if got := h.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := h.FractionAbove(5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FractionAbove(5) = %v, want 0.5", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(9)
	if h.Bucket(0) != 1 || h.Bucket(3) != 1 {
		t.Error("out-of-range samples must clamp to edge buckets")
	}
	if h.Count() != 2 {
		t.Error("clamped samples must still count")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	if s := h.String(); len(s) == 0 {
		t.Error("String() should render something")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram shape did not panic")
		}
	}()
	NewHistogram(1, 0, 4)
}
