package stats

// Utilization tracks what fraction of time a resource was busy, plus how
// that time divides across a fixed number of units (ports, adders, ways).
// The paper needs this for adder utilization (11–30%, §4.3), register-file
// free time (54%/69%, §4.4), scheduler occupancy (63%, §4.5) and port
// availability (92%/86%/77%, §4.4–4.5).
type Utilization struct {
	units    int
	busy     []uint64 // busy cycles per unit
	total    uint64   // elapsed cycles
	requests uint64   // requests issued
	denied   uint64   // requests that found no free unit
}

// NewUtilization returns a tracker for n units. n must be positive.
func NewUtilization(n int) *Utilization {
	if n <= 0 {
		panic("stats: Utilization needs at least one unit")
	}
	return &Utilization{units: n, busy: make([]uint64, n)}
}

// Units returns the number of tracked units.
func (u *Utilization) Units() int { return u.units }

// Tick advances elapsed time by dt cycles.
func (u *Utilization) Tick(dt uint64) { u.total += dt }

// Use records that unit i was busy for dt cycles.
func (u *Utilization) Use(i int, dt uint64) {
	u.busy[i] += dt
	u.requests++
}

// Deny records a request that could not be served (no unit free).
func (u *Utilization) Deny() { u.requests++; u.denied++ }

// UnitUtilization returns the busy fraction of unit i.
func (u *Utilization) UnitUtilization(i int) float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.busy[i]) / float64(u.total)
}

// Average returns the mean busy fraction across units.
func (u *Utilization) Average() float64 {
	if u.total == 0 {
		return 0
	}
	var s uint64
	for _, b := range u.busy {
		s += b
	}
	return float64(s) / float64(u.total) / float64(u.units)
}

// MaxUnit returns the highest per-unit busy fraction and its index.
func (u *Utilization) MaxUnit() (frac float64, unit int) {
	for i := range u.busy {
		if f := u.UnitUtilization(i); f > frac {
			frac, unit = f, i
		}
	}
	return frac, unit
}

// MinUnit returns the lowest per-unit busy fraction and its index.
func (u *Utilization) MinUnit() (frac float64, unit int) {
	frac = 1
	if u.total == 0 {
		return 0, 0
	}
	for i := range u.busy {
		if f := u.UnitUtilization(i); f < frac {
			frac, unit = f, i
		}
	}
	return frac, unit
}

// Availability returns the fraction of requests that found a unit free.
// Returns 1 when no requests were recorded.
func (u *Utilization) Availability() float64 {
	if u.requests == 0 {
		return 1
	}
	return 1 - float64(u.denied)/float64(u.requests)
}

// Total returns elapsed cycles.
func (u *Utilization) Total() uint64 { return u.total }

// Occupancy tracks the average fill level of a structure with a fixed
// number of entries, sampled as (entries-in-use, dt) intervals.
type Occupancy struct {
	capacity  int
	entryTime uint64 // Σ occupied·dt
	total     uint64 // Σ dt
	peak      int
}

// NewOccupancy returns an occupancy tracker for a structure of the given
// capacity. Capacity must be positive.
func NewOccupancy(capacity int) *Occupancy {
	if capacity <= 0 {
		panic("stats: Occupancy needs positive capacity")
	}
	return &Occupancy{capacity: capacity}
}

// Observe records that occupied entries were in use for dt cycles.
func (o *Occupancy) Observe(occupied int, dt uint64) {
	if occupied < 0 || occupied > o.capacity {
		panic("stats: occupancy outside [0, capacity]")
	}
	o.entryTime += uint64(occupied) * dt
	o.total += dt
	if occupied > o.peak {
		o.peak = occupied
	}
}

// Average returns the mean occupied fraction over observed time.
func (o *Occupancy) Average() float64 {
	if o.total == 0 {
		return 0
	}
	return float64(o.entryTime) / float64(o.total) / float64(o.capacity)
}

// FreeFraction returns 1 - Average: the mean fraction of entries free.
func (o *Occupancy) FreeFraction() float64 { return 1 - o.Average() }

// Peak returns the maximum occupancy observed.
func (o *Occupancy) Peak() int { return o.peak }

// Capacity returns the structure capacity.
func (o *Occupancy) Capacity() int { return o.capacity }
