package stats

import (
	"testing"
	"testing/quick"
)

func TestBitBiasWidth(t *testing.T) {
	for _, bad := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBitBias(%d) did not panic", bad)
				}
			}()
			NewBitBias(bad)
		}()
	}
	if b := NewBitBias(64); b.Bits() != 64 {
		t.Error("Bits() mismatch")
	}
}

func TestBitBiasObserve(t *testing.T) {
	b := NewBitBias(4)
	b.Observe(0b0101, 10) // bits 1 and 3 are zero
	b.Observe(0b1111, 10) // no zero bits
	if b.BusyTime() != 20 {
		t.Fatalf("BusyTime = %d, want 20", b.BusyTime())
	}
	wants := []float64{0, 0.5, 0, 0.5} // bit0 never zero, bit1 zero half the time...
	for i, want := range wants {
		if got := b.ZeroBias(i); !almostEqual(got, want, 1e-12) {
			t.Errorf("ZeroBias(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestBitBiasFreeTime(t *testing.T) {
	b := NewBitBias(2)
	b.Observe(0b11, 50)     // busy, all ones
	b.ObserveFree(0b00, 50) // free, holding zeros
	// Over total time each bit is zero half the time.
	for i := 0; i < 2; i++ {
		if got := b.ZeroBias(i); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("ZeroBias(%d) = %v, want 0.5", i, got)
		}
		if got := b.BusyZeroBias(i); got != 0 {
			t.Errorf("BusyZeroBias(%d) = %v, want 0", i, got)
		}
	}
	if b.FreeTime() != 50 || b.TotalTime() != 100 {
		t.Error("free/total time mismatch")
	}
}

func TestBitBiasNeutralWhenEmpty(t *testing.T) {
	b := NewBitBias(3)
	if got := b.ZeroBias(0); got != 0.5 {
		t.Errorf("ZeroBias on empty tracker = %v, want 0.5", got)
	}
	if got := b.BusyZeroBias(1); got != 0.5 {
		t.Errorf("BusyZeroBias on empty tracker = %v, want 0.5", got)
	}
	if im, _ := b.WorstImbalance(); im != 0 {
		t.Errorf("WorstImbalance on empty tracker = %v, want 0", im)
	}
}

func TestBitBiasWorstImbalance(t *testing.T) {
	b := NewBitBias(2)
	b.Observe(0b00, 50) // bit0 zero half the time -> balanced
	b.Observe(0b01, 40) // bit1 zero 90 cycles total
	b.Observe(0b11, 10)
	im, bit := b.WorstImbalance()
	if bit != 1 {
		t.Errorf("worst bit = %d, want 1", bit)
	}
	if !almostEqual(im, 0.8, 1e-12) { // bias 0.9 → |0.9-0.5|*2
		t.Errorf("imbalance = %v, want 0.8", im)
	}
	if got := b.WorstCellBias(); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("WorstCellBias = %v, want 0.9", got)
	}
}

func TestBitBiasWorstCellBiasSymmetric(t *testing.T) {
	// A bit that is almost always "1" stresses the complementary PMOS of
	// the cell just as badly as an almost-always-"0" bit.
	b := NewBitBias(1)
	b.Observe(0b1, 95)
	b.Observe(0b0, 5)
	if got := b.WorstCellBias(); !almostEqual(got, 0.95, 1e-12) {
		t.Errorf("WorstCellBias = %v, want 0.95", got)
	}
}

func TestBitBiasMerge(t *testing.T) {
	a, b := NewBitBias(2), NewBitBias(2)
	a.Observe(0b00, 10)
	b.Observe(0b11, 10)
	a.Merge(b)
	for i := 0; i < 2; i++ {
		if got := a.ZeroBias(i); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("merged ZeroBias(%d) = %v, want 0.5", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("merging different widths did not panic")
		}
	}()
	a.Merge(NewBitBias(3))
}

func TestBitBiasReset(t *testing.T) {
	b := NewBitBias(2)
	b.Observe(0b00, 10)
	b.ObserveFree(0b01, 4)
	b.Reset()
	if b.TotalTime() != 0 || b.ZeroBias(0) != 0.5 {
		t.Error("Reset did not clear tracker")
	}
}

func TestBitBiasZeroDtIgnored(t *testing.T) {
	b := NewBitBias(1)
	b.Observe(0, 0)
	b.ObserveFree(0, 0)
	if b.TotalTime() != 0 {
		t.Error("zero-dt observations must not accumulate")
	}
}

func TestBitBiasPropertyBounded(t *testing.T) {
	// Property: biases always lie in [0,1] and worst cell bias in [0.5,1].
	f := func(vals []uint16, dts []uint8) bool {
		b := NewBitBias(16)
		n := len(vals)
		if len(dts) < n {
			n = len(dts)
		}
		for i := 0; i < n; i++ {
			b.Observe(uint64(vals[i]), uint64(dts[i]))
		}
		for i := 0; i < 16; i++ {
			z := b.ZeroBias(i)
			if z < 0 || z > 1 {
				return false
			}
		}
		w := b.WorstCellBias()
		return w >= 0.5 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBiasPropertyComplement(t *testing.T) {
	// Property: observing v and ^v for equal time balances every bit.
	f := func(vals []uint16) bool {
		b := NewBitBias(16)
		for _, v := range vals {
			b.Observe(uint64(v), 7)
			b.Observe(uint64(^v), 7)
		}
		for i := 0; i < 16; i++ {
			if len(vals) > 0 && !almostEqual(b.ZeroBias(i), 0.5, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
