package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket histogram over a [lo, hi) range with
// uniform bucket width. Samples outside the range are clamped into the
// first or last bucket so totals are conserved.
type Histogram struct {
	lo, hi  float64
	buckets []uint64
	count   uint64
	sum     float64
}

// NewHistogram returns a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += x
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// FractionAbove returns the fraction of samples in buckets whose lower
// edge is >= x.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.count == 0 {
		return 0
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var n uint64
	for i, c := range h.buckets {
		if h.lo+float64(i)*width >= x {
			n += c
		}
	}
	return float64(n) / float64(h.count)
}

// String renders a compact ASCII sketch of the histogram, one row per
// bucket, suitable for experiment logs.
func (h *Histogram) String() string {
	var sb strings.Builder
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var maxC uint64
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.buckets {
		bar := 0
		if maxC > 0 {
			bar = int(40 * c / maxC)
		}
		fmt.Fprintf(&sb, "[%8.3f,%8.3f) %8d %s\n",
			h.lo+float64(i)*width, h.lo+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return sb.String()
}
