// Package stats provides the statistical accumulators shared by the
// Penelope simulation modules: per-bit value-bias trackers, occupancy and
// utilization counters, histograms and small numeric helpers.
//
// All accumulators are event driven: callers report intervals (a value held
// for dt cycles) rather than sampling every cycle, so tracking a structure
// with hundreds of entries stays cheap.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of xs. All elements must be positive;
// non-positive elements are skipped. Returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio formats a fraction as a percentage string with one decimal,
// e.g. Ratio(0.0745) == "7.5%". Useful for experiment table output.
func Ratio(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

// Counter is a labelled monotonic event counter.
type Counter struct {
	Name  string
	Count uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Count += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Count++ }

// Fraction returns c.Count / total, or 0 when total is zero.
func (c *Counter) Fraction(total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c.Count) / float64(total)
}
